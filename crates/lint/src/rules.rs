//! The rule engine: six determinism & accounting rules over a token
//! stream, with `// lint: allow(rule) — why` suppression.
//!
//! Rules run on [`crate::lexer`] output, so comments and every literal
//! form are invisible to them by construction. Code under
//! `#[cfg(test)]` and files under `tests/`, `benches/` or `examples/`
//! are exempt: the rules guard the *simulation's* determinism and the
//! library's accounting, not test scaffolding.

use crate::lexer::{self, Comment, Tok, Token};

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-indexed line.
    pub line: u32,
    /// 1-indexed column.
    pub col: u32,
    /// Rule name (`hash-iter`, ...).
    pub rule: &'static str,
    /// The offending source line, trimmed.
    pub snippet: String,
    /// How to fix it.
    pub hint: String,
}

impl Finding {
    /// Renders as `file:line:col: [rule] snippet` + an indented hint.
    pub fn render(&self) -> String {
        format!(
            "{}:{}:{}: [{}] {}\n  hint: {}",
            self.file, self.line, self.col, self.rule, self.snippet, self.hint
        )
    }
}

/// Static description of one rule.
pub struct RuleInfo {
    /// Rule name as used in `lint.toml` and allow-comments.
    pub name: &'static str,
    /// One-line summary (shown by `--list`).
    pub summary: &'static str,
    /// Long-form documentation (shown by `--explain`), including the
    /// historical bug in this repo the rule guards against.
    pub explain: &'static str,
}

/// Every rule the engine knows, in diagnostic order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        name: "hash-iter",
        summary: "HashMap/HashSet in sim-affecting code needs a justification",
        explain: "\
hash-iter: ban unordered hash containers in sim-affecting crates.

`std::collections::HashMap`/`HashSet` iterate in an order that depends
on the hasher's per-process random seed. Any value that flows from an
iteration of one of these containers into the event stream (trace
entries, event scheduling order, accumulated floats, report rows)
makes the simulation nondeterministic — the exact property the golden
trace hashes pin. Keyed lookups alone are safe today, but nothing
stops the next patch from adding a `.iter()`, so sim-affecting crates
must not hold the type at all.

Fix: use `BTreeMap`/`BTreeSet` (deterministic order, and the sim's
maps are small), or an indexed `Vec` when keys are dense ids.
Justify a deliberate exception with
`// lint: allow(hash-iter) — <why>` on the same or previous line.

History: the PR 5 queue rewrite removed a per-event `HashMap` from the
hot path, and the PR 5–8 reviews repeatedly flagged unordered-iteration
hazards in `sim`, `core` and `gpu` (the DFQ free-run charge map was a
live example); this rule makes those reviews mechanical.",
    },
    RuleInfo {
        name: "wall-clock",
        summary: "Instant/SystemTime/thread-id have no place in sim code",
        explain: "\
wall-clock: ban host-time and thread-identity reads in sim-affecting
crates.

`Instant::now()`, `SystemTime::now()` and `thread::current()` observe
the host, not the simulation. Any branch taken on them differs from
run to run and machine to machine, silently breaking bit-exact
determinism (same seed => byte-identical trace). Simulated time is the
only clock: take `SimTime` from the world/context instead.

Harness crates that *measure* wall time (the sweep runner's
elapsed-ms reporting) are scoped out in `lint.toml`, not allowed
inline: sim-affecting crates have no legitimate use at all.

Fix: thread `ctx.now()` / the world clock through; justify a
deliberate exception with `// lint: allow(wall-clock) — <why>`.

History: the PR 7 work-stealing sweep runner is byte-identical to
serial *only* because no sim-side code can observe which worker or
wall moment ran a cell; this rule keeps it that way.",
    },
    RuleInfo {
        name: "narrowing-cast",
        summary: "bare `as u8/u16/u32` casts silently truncate",
        explain: "\
narrowing-cast: ban bare narrowing `as` casts in non-test code.

`x as u32` wraps silently: 4294967296 becomes 0, and the simulation
carries on with a wrong device index or request count instead of
failing. The checked alternatives say what they mean:
`u32::try_from(x).expect(\"...\")` for invariants, a range-checked
accessor like the TOML loader's `get_u32` (which names the offending
key in its error) for external inputs, or `u32::from(x)` when the
conversion is provably widening.

The cast-target list lives in `lint.toml` (`targets`); `as usize` is
excluded by default because every source type cast to it in this
workspace is 32 bits or smaller. Justify a provably-in-range cast
with `// lint: allow(narrowing-cast) — <why>`.

History: PR 8 fixed seven silent `as u32` truncation sites in the
scenario TOML loader — `device = 4294967296` pinned a group to device
0 instead of erroring. This rule is that bug class, caught at the
source level.",
    },
    RuleInfo {
        name: "eager-trace",
        summary: "format! passed to a trace record site defeats zero-cost tracing",
        explain: "\
eager-trace: flag `format!` built eagerly at a trace record call.

`trace.record(at, label, format!(...))` pays the formatting and its
allocation even when tracing is disabled — which is the default for
every benchmark and sweep run. The zero-cost forms defer the work
behind the enabled check: `trace.record_with(at, label, || ...)` or
the `trace_event!` macro.

Fix: use `record_with`/`trace_event!`; a record site that is itself
inside an enabled-gate (the `trace_event!` macro's own expansion)
carries `// lint: allow(eager-trace) — <why>`.

History: PR 5's hot-path overhaul migrated every eager `format!`
trace site in `world.rs` and the schedulers to `record_with`, part of
the -57% wall-time win on the reference churn sweep; this rule stops
new eager sites from creeping back in.",
    },
    RuleInfo {
        name: "unchecked-unwrap",
        summary: "unwrap()/expect() in library code needs a justification",
        explain: "\
unchecked-unwrap: `unwrap()`/`expect()` in library (non-test,
non-bin) code must carry a justification.

A panic in library code doesn't just kill one run: the PR 7
work-stealing sweep executes many cells on shared worker threads, so
one unwrap tearing through a worker poisons a whole sweep's results.
Library code should return errors; where a panic encodes a real
invariant (\"rotation nonempty: checked three lines up\"), say so.

Fix: propagate with `?`/`ok_or_else`, or state the invariant with
`// lint: allow(unchecked-unwrap) — <why>`. Binary targets
(`src/bin/`, `src/main.rs`) are exempt via `skip_bins` in
`lint.toml`: a CLI aborting on bad input is fine.

History: repeated review rounds (PR 2, PR 4) hardened `expect` sites
in the placement and migration paths after near-miss panics on empty
rotations; the allow-comments this rule demands are those reviews'
conclusions, written down next to the code.",
    },
    RuleInfo {
        name: "panic-path",
        summary: "panic!/todo!/unimplemented! in sim-affecting code needs a justification",
        explain: "\
panic-path: flag `panic!`, `todo!` and `unimplemented!` invocations in
sim-affecting code.

A panic in the simulation core tears through the work-stealing sweep:
one cell's abort poisons a shared worker thread and takes the rest of
the sweep's cells with it. Worse, `todo!` and `unimplemented!` are
placeholders that *compile* — a half-wired code path ships silently
and only explodes when some scenario happens to reach it, possibly
hours into a chaos sweep. Sim-affecting crates should return typed
errors (the loader's keyed `SpecError`s are the model) or encode the
invariant in the type system.

`unreachable!` is deliberately not flagged: it documents a branch the
surrounding logic already proves dead, which is the one legitimate
abort form.

Fix: return an error, or state the invariant with
`// lint: allow(panic-path) — <why>`.

History: wiring PR 10's fault injection left a bare `panic!` guard in
the world's run prologue that a malformed fault plan could reach,
killing an entire chaos sweep; validation moved into the scenario
loader's keyed errors and the remaining run-start guard now carries
its justification inline. This rule keeps new abort sites from
creeping into the sim crates unexamined.",
    },
];

/// Looks up a rule description by name.
pub fn rule_info(name: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.name == name)
}

/// Scoping the engine needs for one file (derived from `Config` by the
/// caller, kept free of config types so `rules` stays testable alone).
#[derive(Debug, Clone)]
pub struct FileRules {
    /// Names of rules that apply to this file.
    pub active: Vec<&'static str>,
    /// Cast targets for `narrowing-cast`.
    pub narrowing_targets: Vec<String>,
}

impl Default for FileRules {
    fn default() -> Self {
        FileRules {
            active: RULES.iter().map(|r| r.name).collect(),
            narrowing_targets: vec!["u8".into(), "u16".into(), "u32".into()],
        }
    }
}

/// Lints one file's source text.
pub fn lint_source(rel_path: &str, src: &str, rules: &FileRules) -> Vec<Finding> {
    let lexed = lexer::lex(src);
    let mask = test_mask(&lexed.tokens);
    let tokens: Vec<&Token> = lexed
        .tokens
        .iter()
        .zip(&mask)
        .filter_map(|(t, &masked)| (!masked).then_some(t))
        .collect();
    let lines: Vec<&str> = src.lines().collect();
    let allows = parse_allows(&lexed.comments);

    let mut findings = Vec::new();
    let active = |name: &str| rules.active.contains(&name);
    if active("hash-iter") {
        hash_iter(&tokens, &mut findings);
    }
    if active("wall-clock") {
        wall_clock(&tokens, &mut findings);
    }
    if active("narrowing-cast") {
        narrowing_cast(&tokens, &rules.narrowing_targets, &mut findings);
    }
    if active("eager-trace") {
        eager_trace(&tokens, &mut findings);
    }
    if active("unchecked-unwrap") {
        unchecked_unwrap(&tokens, &mut findings);
    }
    if active("panic-path") {
        panic_path(&tokens, &mut findings);
    }

    // Attach file/snippet, then apply allow-comments.
    let mut out = Vec::new();
    for mut f in findings {
        f.file = rel_path.to_string();
        f.snippet = snippet(&lines, f.line);
        match allow_for(&allows, f.rule, f.line) {
            Some(Allow {
                has_reason: true, ..
            }) => {} // suppressed
            Some(Allow {
                has_reason: false, ..
            }) => {
                f.hint = format!(
                    "allow-comment for {} is missing its justification: write \
                     `// lint: allow({}) — <why>`",
                    f.rule, f.rule
                );
                out.push(f);
            }
            None => out.push(f),
        }
    }
    out.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    out
}

fn snippet(lines: &[&str], line: u32) -> String {
    let text = lines
        .get(line as usize - 1)
        .map(|l| l.trim())
        .unwrap_or_default();
    let mut s: String = text.chars().take(90).collect();
    if s.len() < text.len() {
        s.push('…');
    }
    s
}

// ----------------------------------------------------------------------
// Allow-comments
// ----------------------------------------------------------------------

/// One parsed `lint: allow(rule)` marker.
#[derive(Debug, Clone)]
struct Allow {
    rule: String,
    /// Lines this allow covers (the comment's own lines).
    line: u32,
    end_line: u32,
    /// Whether a non-empty justification follows the closing paren.
    has_reason: bool,
}

/// Extracts allow-markers from comments. Accepted syntax, anywhere in
/// a `//` or `/* */` comment:
///
/// `lint: allow(rule-a, rule-b) — justification text`
///
/// The separator before the justification may be `—`, `-`, `:` or just
/// whitespace; what matters is that *some* non-empty text follows.
fn parse_allows(comments: &[Comment]) -> Vec<Allow> {
    let mut out = Vec::new();
    for c in comments {
        let Some(at) = c.text.find("lint: allow(") else {
            continue;
        };
        let rest = &c.text[at + "lint: allow(".len()..];
        let Some(close) = rest.find(')') else {
            continue;
        };
        let reason = rest[close + 1..]
            .trim_start_matches(|ch: char| {
                ch.is_whitespace() || ch == '—' || ch == '-' || ch == '–' || ch == ':'
            })
            .trim();
        for rule in rest[..close].split(',') {
            out.push(Allow {
                rule: rule.trim().to_string(),
                line: c.line,
                end_line: c.end_line,
                has_reason: !reason.is_empty(),
            });
        }
    }
    out
}

/// An allow suppresses a finding on any line it spans, or on the line
/// directly below it (the "comment above the offending line" idiom).
fn allow_for<'a>(allows: &'a [Allow], rule: &str, line: u32) -> Option<&'a Allow> {
    allows
        .iter()
        .filter(|a| a.rule == rule && a.line <= line && line <= a.end_line + 1)
        .max_by_key(|a| a.has_reason)
}

// ----------------------------------------------------------------------
// #[cfg(test)] masking
// ----------------------------------------------------------------------

/// Marks tokens inside `#[cfg(test)]`-attributed items. Returns one
/// bool per token: `true` = exempt from linting.
///
/// The recognizer is purely structural: after the exact token sequence
/// `# [ cfg ( test ) ]` it skips the next item — through the first
/// balanced `{...}` block, or to a `;` if one comes first (e.g.
/// `#[cfg(test)] use ...;`). `cfg(not(test))` and compound predicates
/// do not match and are therefore linted, which errs on the safe side.
fn test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if is_cfg_test_at(tokens, i) {
            let attr_end = i + 7; // one past `]`
            let mut j = attr_end;
            let mut depth = 0usize;
            let mut entered = false;
            while j < tokens.len() {
                match tokens[j].kind {
                    Tok::Punct('{') => {
                        depth += 1;
                        entered = true;
                    }
                    Tok::Punct('}') => {
                        depth -= 1;
                        if entered && depth == 0 {
                            break;
                        }
                    }
                    Tok::Punct(';') if !entered => break,
                    _ => {}
                }
                j += 1;
            }
            for m in mask.iter_mut().take((j + 1).min(tokens.len())).skip(i) {
                *m = true;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    mask
}

fn is_cfg_test_at(tokens: &[Token], i: usize) -> bool {
    let pat: [&dyn Fn(&Tok) -> bool; 7] = [
        &|t| *t == Tok::Punct('#'),
        &|t| *t == Tok::Punct('['),
        &|t| matches!(t, Tok::Ident(s) if s == "cfg"),
        &|t| *t == Tok::Punct('('),
        &|t| matches!(t, Tok::Ident(s) if s == "test"),
        &|t| *t == Tok::Punct(')'),
        &|t| *t == Tok::Punct(']'),
    ];
    tokens.len() >= i + pat.len() && pat.iter().enumerate().all(|(k, p)| p(&tokens[i + k].kind))
}

// ----------------------------------------------------------------------
// Matchers
// ----------------------------------------------------------------------

fn ident_is(t: &Token, s: &str) -> bool {
    matches!(&t.kind, Tok::Ident(n) if n == s)
}

fn punct_is(t: &Token, c: char) -> bool {
    t.kind == Tok::Punct(c)
}

fn raw_finding(t: &Token, rule: &'static str, hint: String) -> Finding {
    Finding {
        file: String::new(),
        line: t.line,
        col: t.col,
        rule,
        snippet: String::new(),
        hint,
    }
}

fn hash_iter(tokens: &[&Token], findings: &mut Vec<Finding>) {
    for t in tokens {
        if ident_is(t, "HashMap") || ident_is(t, "HashSet") {
            findings.push(raw_finding(
                t,
                "hash-iter",
                "hash iteration order feeds the event stream: use BTreeMap/BTreeSet \
                 or an indexed Vec, or justify with `// lint: allow(hash-iter) — <why>`"
                    .into(),
            ));
        }
    }
}

fn wall_clock(tokens: &[&Token], findings: &mut Vec<Finding>) {
    for w in tokens.windows(4) {
        let path_to = |head: &str, tail: &str| {
            ident_is(w[0], head)
                && punct_is(w[1], ':')
                && punct_is(w[2], ':')
                && ident_is(w[3], tail)
        };
        if path_to("Instant", "now") || path_to("SystemTime", "now") {
            findings.push(raw_finding(
                w[0],
                "wall-clock",
                "sim time is the only clock: take SimTime from the world/context \
                 (`ctx.now()`), never the host"
                    .into(),
            ));
        } else if path_to("thread", "current") {
            findings.push(raw_finding(
                w[0],
                "wall-clock",
                "thread identity varies run-to-run: sim code must behave identically \
                 on any worker thread"
                    .into(),
            ));
        }
    }
}

fn narrowing_cast(tokens: &[&Token], targets: &[String], findings: &mut Vec<Finding>) {
    for w in tokens.windows(2) {
        if ident_is(w[0], "as") {
            if let Tok::Ident(target) = &w[1].kind {
                if targets.iter().any(|t| t == target) {
                    findings.push(raw_finding(
                        w[0],
                        "narrowing-cast",
                        format!(
                            "`as {target}` wraps silently: use `{target}::try_from(..)` \
                             (or a range-checked accessor like the loader's `get_u32`), \
                             or justify with `// lint: allow(narrowing-cast) — <why>`"
                        ),
                    ));
                }
            }
        }
    }
}

fn eager_trace(tokens: &[&Token], findings: &mut Vec<Finding>) {
    let mut i = 0usize;
    while i < tokens.len() {
        if ident_is(tokens[i], "record") && i + 1 < tokens.len() && punct_is(tokens[i + 1], '(') {
            // Scan the argument list for a `format !` pair.
            let mut depth = 0usize;
            let mut j = i + 1;
            while j < tokens.len() {
                if punct_is(tokens[j], '(') {
                    depth += 1;
                } else if punct_is(tokens[j], ')') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if depth >= 1
                    && ident_is(tokens[j], "format")
                    && j + 1 < tokens.len()
                    && punct_is(tokens[j + 1], '!')
                {
                    findings.push(raw_finding(
                        tokens[j],
                        "eager-trace",
                        "this formats (and allocates) even with tracing disabled: use \
                         `record_with(at, label, || ...)` or `trace_event!`"
                            .into(),
                    ));
                }
                j += 1;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
}

fn unchecked_unwrap(tokens: &[&Token], findings: &mut Vec<Finding>) {
    for w in tokens.windows(3) {
        if punct_is(w[0], '.')
            && (ident_is(w[1], "unwrap") || ident_is(w[1], "expect"))
            && punct_is(w[2], '(')
        {
            let which = match &w[1].kind {
                Tok::Ident(s) => s.clone(),
                _ => unreachable!("matched ident"),
            };
            findings.push(raw_finding(
                w[1],
                "unchecked-unwrap",
                format!(
                    "a library panic poisons a whole sweep worker: propagate the error, \
                     or state the invariant with `// lint: allow(unchecked-unwrap) — <why>` \
                     (found `.{which}(`)"
                ),
            ));
        }
    }
}

fn panic_path(tokens: &[&Token], findings: &mut Vec<Finding>) {
    for w in tokens.windows(2) {
        let which = ["panic", "todo", "unimplemented"]
            .iter()
            .find(|m| ident_is(w[0], m));
        if let Some(which) = which {
            if punct_is(w[1], '!') {
                findings.push(raw_finding(
                    w[0],
                    "panic-path",
                    format!(
                        "`{which}!` aborts the whole sweep worker: return a typed \
                         error (or prove the branch dead with `unreachable!`), or \
                         justify with `// lint: allow(panic-path) — <why>`"
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str) -> Vec<Finding> {
        lint_source("crates/x/src/lib.rs", src, &FileRules::default())
    }

    fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn hash_iter_fires_on_type_mention() {
        let f = lint("use std::collections::HashMap;\nstruct S { m: HashMap<u32, u32> }\n");
        assert_eq!(rules_of(&f), vec!["hash-iter", "hash-iter"]);
        assert_eq!((f[0].line, f[0].col), (1, 23));
        assert!(f[1].snippet.contains("struct S"));
    }

    #[test]
    fn wall_clock_fires_on_all_three_forms() {
        let f = lint(
            "fn f() { let a = Instant::now(); let b = SystemTime::now(); \
             let c = std::thread::current().id(); }",
        );
        assert_eq!(rules_of(&f), vec!["wall-clock"; 3]);
    }

    #[test]
    fn narrowing_cast_respects_target_list() {
        let src = "fn f(x: u64) { let a = x as u32; let b = x as usize; let c = x as u16; }";
        let f = lint(src);
        assert_eq!(
            rules_of(&f),
            vec!["narrowing-cast"; 2],
            "usize not in defaults"
        );
        let rules = FileRules {
            narrowing_targets: vec!["usize".into()],
            ..FileRules::default()
        };
        let f = lint_source("x.rs", src, &rules);
        assert_eq!(rules_of(&f), vec!["narrowing-cast"]);
    }

    #[test]
    fn eager_trace_fires_only_inside_record_calls() {
        let f = lint("fn f() { trace.record(at, \"x\", format!(\"{t}\")); }");
        assert_eq!(rules_of(&f), vec!["eager-trace"]);
        // record_with with a closure is the blessed form.
        let f = lint("fn f() { trace.record_with(at, \"x\", || format!(\"{t}\")); }");
        assert!(f.is_empty());
        // format! elsewhere is not this rule's business.
        let f = lint("fn f() { let s = format!(\"{t}\"); trace.record(at, \"x\", s); }");
        assert!(f.is_empty());
    }

    #[test]
    fn unwrap_and_expect_fire() {
        let f = lint("fn f() { x.unwrap(); y.expect(\"msg\"); }");
        assert_eq!(rules_of(&f), vec!["unchecked-unwrap"; 2]);
    }

    #[test]
    fn panic_path_fires_on_all_three_macros() {
        let f = lint(
            "fn f(x: u32) { if x > 9 { panic!(\"nine\"); } }\n\
             fn g() { todo!() }\n\
             fn h() -> u64 { unimplemented!(\"later\") }\n",
        );
        assert_eq!(rules_of(&f), vec!["panic-path"; 3]);
        assert!(f[0].hint.contains("`panic!`"), "{}", f[0].hint);
    }

    #[test]
    fn panic_path_skips_unreachable_and_non_macro_uses() {
        // unreachable! documents a proven-dead branch; `panic::` paths
        // and `should_panic` attributes are not invocations.
        let f = lint(
            "fn f(x: u32) -> u32 { match x % 2 { 0 => 1, 1 => 2, _ => unreachable!() } }\n\
             fn g() { std::panic::set_hook(Box::new(|_| {})); }\n\
             #[should_panic]\nfn attr_mention() {}\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn panic_path_respects_allow_comment() {
        let src = "fn f(cap: usize) { if cap == 0 { \
                   panic!(\"zero cap\"); } } \
                   // lint: allow(panic-path) — misuse guard\n";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn allow_comment_suppresses_same_and_next_line() {
        let same = "fn f() { x.unwrap(); } // lint: allow(unchecked-unwrap) — test shim\n";
        assert!(lint(same).is_empty());
        let above = "// lint: allow(unchecked-unwrap) — infallible by construction\nfn g() { x.unwrap(); }\n";
        assert!(lint(above).is_empty());
        let too_far = "// lint: allow(unchecked-unwrap) — stale\n\nfn g() { x.unwrap(); }\n";
        assert_eq!(
            lint(too_far).len(),
            1,
            "an allow does not leak past one line"
        );
    }

    #[test]
    fn allow_without_reason_does_not_suppress() {
        let f = lint("fn f() { x.unwrap(); } // lint: allow(unchecked-unwrap)\n");
        assert_eq!(f.len(), 1);
        assert!(
            f[0].hint.contains("missing its justification"),
            "{}",
            f[0].hint
        );
    }

    #[test]
    fn allow_is_rule_specific() {
        let f = lint("fn f() { x.unwrap(); } // lint: allow(hash-iter) — wrong rule\n");
        assert_eq!(rules_of(&f), vec!["unchecked-unwrap"]);
    }

    #[test]
    fn multi_rule_allows() {
        let src = "fn f(x: u64) { m.get(&k).unwrap() as u32 } \
                   // lint: allow(unchecked-unwrap, narrowing-cast) — both justified\n";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn cfg_test_modules_are_exempt() {
        let src = "\
fn lib() {}
#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    fn t() { x.unwrap(); let _ = 1u64 as u32; }
}
";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn cfg_test_on_a_single_item() {
        let src = "#[cfg(test)]\nuse std::collections::HashMap;\nfn f() { x.unwrap(); }\n";
        let f = lint(src);
        assert_eq!(
            rules_of(&f),
            vec!["unchecked-unwrap"],
            "only the use is exempt"
        );
    }

    #[test]
    fn cfg_not_test_is_still_linted() {
        let src = "#[cfg(not(test))]\nuse std::collections::HashMap;\n";
        assert_eq!(rules_of(&lint(src)), vec!["hash-iter"]);
    }

    #[test]
    fn comments_and_strings_never_fire() {
        let src = r###"
// HashMap Instant::now() .unwrap() as u32 format!
/* SystemTime::now() */
fn f() {
    let a = "HashMap .unwrap() as u32";
    let b = r#"Instant::now()"#;
    let c = 'a';
}
"###;
        assert!(lint(src).is_empty());
    }

    #[test]
    fn findings_are_sorted_by_position() {
        let f = lint("fn f(x: u64) { y.unwrap(); let a = x as u32; }\nfn g() { z.unwrap(); }\n");
        let positions: Vec<_> = f.iter().map(|f| (f.line, f.col)).collect();
        let mut sorted = positions.clone();
        sorted.sort();
        assert_eq!(positions, sorted);
    }

    #[test]
    fn every_rule_has_explain_text_citing_history() {
        for rule in RULES {
            assert!(rule.explain.contains("History:"), "{}", rule.name);
            assert!(rule.explain.len() > 200, "{}", rule.name);
        }
        assert!(rule_info("hash-iter").is_some());
        assert!(rule_info("warp-drive").is_none());
    }
}
