//! `lint.toml` — per-crate rule scoping.
//!
//! The linter is zero-dependency, so the config file is parsed by a
//! tiny built-in reader covering exactly the subset it needs:
//!
//! ```toml
//! [lint]
//! # Path prefixes (relative to the workspace root) no rule ever sees.
//! exclude = ["crates/vendor", "target"]
//!
//! [rule.hash-iter]
//! # Path prefixes this rule applies to; absent = everywhere.
//! paths = ["crates/sim", "crates/core"]
//!
//! [rule.narrowing-cast]
//! # Cast targets treated as narrowing.
//! targets = ["u8", "u16", "u32"]
//!
//! [rule.unchecked-unwrap]
//! # Skip `src/bin/`, `src/main.rs` and `build.rs` (CLI code may panic).
//! skip_bins = true
//! ```
//!
//! `key = value` pairs accept strings, booleans and flat string
//! arrays; `#` comments and blank lines are ignored. Unknown sections
//! and keys are rejected so a typo cannot silently widen or narrow a
//! rule's scope — the linter applies its own strictness discipline to
//! its own config.

use std::collections::BTreeMap;

use crate::rules::RULES;

/// Scoping for one rule.
#[derive(Debug, Clone, Default)]
pub struct RuleConfig {
    /// Rule is skipped entirely when false.
    pub enabled: bool,
    /// Path prefixes the rule applies to; empty = everywhere.
    pub paths: Vec<String>,
    /// Path prefixes the rule skips (on top of the global excludes).
    pub exclude: Vec<String>,
    /// Skip binary targets (`src/bin/`, `src/main.rs`, `build.rs`).
    pub skip_bins: bool,
    /// For `narrowing-cast`: the cast targets treated as narrowing.
    pub targets: Vec<String>,
}

/// Parsed `lint.toml`.
#[derive(Debug, Clone)]
pub struct Config {
    /// Path prefixes excluded from every rule.
    pub exclude: Vec<String>,
    /// Per-rule scoping, keyed by rule name.
    pub rules: BTreeMap<String, RuleConfig>,
}

impl Default for Config {
    fn default() -> Self {
        let mut rules = BTreeMap::new();
        for rule in RULES {
            rules.insert(
                rule.name.to_string(),
                RuleConfig {
                    enabled: true,
                    paths: Vec::new(),
                    exclude: Vec::new(),
                    skip_bins: false,
                    targets: default_targets(rule.name),
                },
            );
        }
        Config {
            exclude: vec!["target".into()],
            rules,
        }
    }
}

fn default_targets(rule: &str) -> Vec<String> {
    if rule == "narrowing-cast" {
        vec!["u8".into(), "u16".into(), "u32".into()]
    } else {
        Vec::new()
    }
}

/// A config-file error with a line number.
#[derive(Debug)]
pub struct ConfigError(pub String);

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ConfigError {}

impl Config {
    /// Parses `lint.toml` text.
    pub fn parse(text: &str) -> Result<Config, ConfigError> {
        let mut config = Config::default();
        let mut section: Option<String> = None; // None until a header
        for (i, raw) in text.lines().enumerate() {
            let line_no = i + 1;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(header) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
                let header = header.trim();
                if header == "lint" {
                    section = Some("lint".to_string());
                } else if let Some(rule) = header.strip_prefix("rule.") {
                    if !RULES.iter().any(|r| r.name == rule) {
                        return Err(ConfigError(format!(
                            "lint.toml line {line_no}: unknown rule {rule:?} (rules: {})",
                            rule_names().join(", ")
                        )));
                    }
                    section = Some(format!("rule.{rule}"));
                } else {
                    return Err(ConfigError(format!(
                        "lint.toml line {line_no}: unknown section [{header}]; \
                         use [lint] or [rule.<name>]"
                    )));
                }
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(ConfigError(format!(
                    "lint.toml line {line_no}: expected key = value, got {line:?}"
                )));
            };
            let (key, value) = (key.trim(), value.trim());
            let Some(section) = section.as_deref() else {
                return Err(ConfigError(format!(
                    "lint.toml line {line_no}: {key:?} appears before any \
                     [lint] or [rule.<name>] section"
                )));
            };
            match section {
                "lint" => match key {
                    "exclude" => config.exclude = parse_string_array(value, line_no)?,
                    other => {
                        return Err(ConfigError(format!(
                            "lint.toml line {line_no}: unknown [lint] key {other:?} \
                             (supported: exclude)"
                        )))
                    }
                },
                rule_section => {
                    // lint: allow(unchecked-unwrap) — sections reaching here
                    // matched the rule. prefix filter above
                    let rule = rule_section.strip_prefix("rule.").expect("rule section");
                    // lint: allow(unchecked-unwrap) — the rule name was
                    // validated against the known-rule list just above
                    let rc = config.rules.get_mut(rule).expect("known rule");
                    match key {
                        "enabled" => rc.enabled = parse_bool(value, line_no)?,
                        "paths" => rc.paths = parse_string_array(value, line_no)?,
                        "exclude" => rc.exclude = parse_string_array(value, line_no)?,
                        "skip_bins" => rc.skip_bins = parse_bool(value, line_no)?,
                        "targets" if rule == "narrowing-cast" => {
                            rc.targets = parse_string_array(value, line_no)?;
                        }
                        other => {
                            return Err(ConfigError(format!(
                                "lint.toml line {line_no}: unknown [rule.{rule}] key \
                                 {other:?} (supported: enabled, paths, exclude, \
                                 skip_bins{})",
                                if rule == "narrowing-cast" {
                                    ", targets"
                                } else {
                                    ""
                                }
                            )))
                        }
                    }
                }
            }
        }
        Ok(config)
    }

    /// Loads `lint.toml` from a path; a missing file yields defaults.
    pub fn load(path: &std::path::Path) -> Result<Config, ConfigError> {
        match std::fs::read_to_string(path) {
            Ok(text) => Config::parse(&text),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Config::default()),
            Err(e) => Err(ConfigError(format!("cannot read {}: {e}", path.display()))),
        }
    }

    /// Whether any rule at all applies to `rel_path` (cheap pre-filter).
    pub fn file_is_excluded(&self, rel_path: &str) -> bool {
        self.exclude.iter().any(|p| path_has_prefix(rel_path, p))
    }

    /// Whether `rule` applies to `rel_path`.
    pub fn rule_applies(&self, rule: &str, rel_path: &str) -> bool {
        let Some(rc) = self.rules.get(rule) else {
            return false;
        };
        if !rc.enabled || self.file_is_excluded(rel_path) {
            return false;
        }
        if rc.exclude.iter().any(|p| path_has_prefix(rel_path, p)) {
            return false;
        }
        if rc.skip_bins && is_bin_path(rel_path) {
            return false;
        }
        rc.paths.is_empty() || rc.paths.iter().any(|p| path_has_prefix(rel_path, p))
    }
}

fn rule_names() -> Vec<&'static str> {
    RULES.iter().map(|r| r.name).collect()
}

/// Prefix match on whole path components: `crates/sim` matches
/// `crates/sim/src/lib.rs` but not `crates/simulator/...`.
fn path_has_prefix(path: &str, prefix: &str) -> bool {
    let prefix = prefix.trim_end_matches('/');
    path == prefix
        || path
            .strip_prefix(prefix)
            .is_some_and(|rest| rest.starts_with('/'))
}

/// Binary-target paths: `src/bin/*`, `src/main.rs`, `build.rs`.
pub fn is_bin_path(rel_path: &str) -> bool {
    rel_path.contains("/src/bin/")
        || rel_path.starts_with("src/bin/")
        || rel_path.ends_with("src/main.rs")
        || rel_path == "build.rs"
        || rel_path.ends_with("/build.rs")
}

/// Test-target paths, skipped by every rule: `tests/`, `benches/`,
/// `examples/` directory components anywhere in the path.
pub fn is_test_path(rel_path: &str) -> bool {
    rel_path
        .split('/')
        .any(|seg| seg == "tests" || seg == "benches" || seg == "examples")
}

fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_bool(s: &str, line_no: usize) -> Result<bool, ConfigError> {
    match s {
        "true" => Ok(true),
        "false" => Ok(false),
        other => Err(ConfigError(format!(
            "lint.toml line {line_no}: expected true or false, got {other:?}"
        ))),
    }
}

fn parse_string_array(s: &str, line_no: usize) -> Result<Vec<String>, ConfigError> {
    let body = s
        .strip_prefix('[')
        .and_then(|b| b.strip_suffix(']'))
        .ok_or_else(|| {
            ConfigError(format!(
                "lint.toml line {line_no}: expected [\"...\", ...], got {s:?}"
            ))
        })?;
    let mut out = Vec::new();
    for part in body.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let item = part
            .strip_prefix('"')
            .and_then(|p| p.strip_suffix('"'))
            .ok_or_else(|| {
                ConfigError(format!(
                    "lint.toml line {line_no}: array items must be quoted strings, \
                     got {part:?}"
                ))
            })?;
        out.push(item.to_string());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_enable_every_rule_everywhere() {
        let c = Config::default();
        for rule in RULES {
            assert!(
                c.rule_applies(rule.name, "crates/x/src/lib.rs"),
                "{}",
                rule.name
            );
        }
        assert!(!c.rule_applies("hash-iter", "target/debug/x.rs"));
    }

    #[test]
    fn paths_scope_rules_by_component_prefix() {
        let c =
            Config::parse("[rule.hash-iter]\npaths = [\"crates/sim\", \"crates/core\"]\n").unwrap();
        assert!(c.rule_applies("hash-iter", "crates/sim/src/event.rs"));
        assert!(!c.rule_applies("hash-iter", "crates/simulator/src/lib.rs"));
        assert!(!c.rule_applies("hash-iter", "crates/scenario/src/toml.rs"));
        // Other rules stay global.
        assert!(c.rule_applies("wall-clock", "crates/scenario/src/toml.rs"));
    }

    #[test]
    fn excludes_and_bins() {
        let c = Config::parse(
            "[lint]\nexclude = [\"crates/vendor\"]\n\
             [rule.unchecked-unwrap]\nskip_bins = true\n",
        )
        .unwrap();
        assert!(!c.rule_applies("hash-iter", "crates/vendor/rand/src/lib.rs"));
        assert!(!c.rule_applies("unchecked-unwrap", "crates/scenario/src/bin/neon.rs"));
        assert!(c.rule_applies("unchecked-unwrap", "crates/scenario/src/emit.rs"));
        assert!(c.rule_applies("hash-iter", "crates/scenario/src/bin/neon.rs"));
    }

    #[test]
    fn unknown_sections_keys_and_rules_are_rejected() {
        assert!(Config::parse("[rule.warp-drive]\n").is_err());
        assert!(Config::parse("[lint]\nbogus = true\n").is_err());
        assert!(Config::parse("[rule.hash-iter]\nbogus = 1\n").is_err());
        assert!(Config::parse("[rule.hash-iter]\ntargets = [\"u8\"]\n").is_err());
        assert!(Config::parse("stray = true\n").is_err());
        assert!(Config::parse("[weird]\n").is_err());
    }

    #[test]
    fn narrowing_targets_are_configurable() {
        let c = Config::parse("[rule.narrowing-cast]\ntargets = [\"u8\", \"usize\"]\n").unwrap();
        assert_eq!(c.rules["narrowing-cast"].targets, vec!["u8", "usize"]);
        let d = Config::default();
        assert_eq!(d.rules["narrowing-cast"].targets, vec!["u8", "u16", "u32"]);
    }

    #[test]
    fn disabling_a_rule() {
        let c = Config::parse("[rule.eager-trace]\nenabled = false\n").unwrap();
        assert!(!c.rule_applies("eager-trace", "crates/sim/src/trace.rs"));
    }

    #[test]
    fn test_paths_are_recognized() {
        assert!(is_test_path("crates/sim/tests/properties.rs"));
        assert!(is_test_path("tests/fleet.rs"));
        assert!(is_test_path("crates/bench/benches/core_hot_path.rs"));
        assert!(!is_test_path("crates/sim/src/event.rs"));
    }
}
