//! §6.3: the channel-exhaustion denial of service and the protected
//! allocation policy that defuses it.
//!
//! On the paper's GTX670, after one application created 48 contexts
//! (one compute + one DMA channel each) "no other application could
//! use the GPU". The proposed OS policy limits each application to `C`
//! channels and admits at most `D/C` applications.

use neon_core::quota::{ChannelQuota, QuotaDecision};
use neon_gpu::{Gpu, GpuConfig, RequestKind, TaskId};
use neon_metrics::Table;

/// Configuration of the DoS experiment.
#[derive(Debug, Clone)]
pub struct Config {
    /// Device configuration (defaults to the GTX670's 48 contexts / 96
    /// channels).
    pub gpu: GpuConfig,
    /// Per-task channel limit `C` under the policy.
    pub per_task_limit: usize,
    /// Contexts the attacker attempts to open.
    pub attack_contexts: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            gpu: GpuConfig::default(),
            per_task_limit: 4,
            attack_contexts: 64,
        }
    }
}

impl Config {
    /// The configuration used by `sec63 --check` in CI (the
    /// experiment is already CI-sized; the full attack runs).
    pub fn check() -> Self {
        Config::default()
    }
}

/// Outcome of one scenario (with or without the policy).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outcome {
    /// Whether the allocation policy was active.
    pub policy: bool,
    /// Channels the attacker obtained.
    pub attacker_channels: usize,
    /// Contexts the attacker obtained.
    pub attacker_contexts: usize,
    /// Whether a subsequent well-behaved application could still get a
    /// context plus its compute and DMA channels.
    pub victim_admitted: bool,
}

/// Runs the attack against an unprotected device.
pub fn run_unprotected(cfg: &Config) -> Outcome {
    let mut gpu = Gpu::new(cfg.gpu.clone());
    let attacker = TaskId::new(0);
    let mut contexts = 0;
    let mut channels = 0;
    for _ in 0..cfg.attack_contexts {
        let Ok(ctx) = gpu.create_context(attacker) else {
            break;
        };
        contexts += 1;
        for kind in [RequestKind::Compute, RequestKind::Dma] {
            if gpu.create_channel(ctx, kind).is_ok() {
                channels += 1;
            }
        }
    }
    Outcome {
        policy: false,
        attacker_channels: channels,
        attacker_contexts: contexts,
        victim_admitted: admit_victim(&mut gpu),
    }
}

/// Runs the attack with the `C`/`D/C` allocation policy interposed.
pub fn run_protected(cfg: &Config) -> Outcome {
    let mut gpu = Gpu::new(cfg.gpu.clone());
    let mut quota = ChannelQuota::new(cfg.gpu.total_channels, cfg.per_task_limit);
    let attacker = TaskId::new(0);
    let mut contexts = 0;
    let mut channels = 0;
    'attack: for _ in 0..cfg.attack_contexts {
        // The policy is consulted before the device; a denied
        // allocation surfaces as "out of resources" to the attacker.
        let mut granted = Vec::new();
        for _ in [RequestKind::Compute, RequestKind::Dma] {
            match quota.request(attacker) {
                QuotaDecision::Grant => granted.push(()),
                QuotaDecision::TaskLimit | QuotaDecision::AdmissionLimit => break 'attack,
            }
        }
        let Ok(ctx) = gpu.create_context(attacker) else {
            break;
        };
        contexts += 1;
        for kind in [RequestKind::Compute, RequestKind::Dma] {
            if gpu.create_channel(ctx, kind).is_ok() {
                channels += 1;
            }
        }
    }
    let victim = TaskId::new(1);
    let victim_ok = matches!(quota.request(victim), QuotaDecision::Grant)
        && matches!(quota.request(victim), QuotaDecision::Grant)
        && admit_victim(&mut gpu);
    Outcome {
        policy: true,
        attacker_channels: channels,
        attacker_contexts: contexts,
        victim_admitted: victim_ok,
    }
}

fn admit_victim(gpu: &mut Gpu) -> bool {
    let victim = TaskId::new(1);
    let Ok(ctx) = gpu.create_context(victim) else {
        return false;
    };
    gpu.create_channel(ctx, RequestKind::Compute).is_ok()
        && gpu.create_channel(ctx, RequestKind::Dma).is_ok()
}

/// Runs both scenarios concurrently (each owns its device, so they
/// are independent), always reporting unprotected first. This
/// experiment has no discrete-event cells — it attacks the allocation
/// layer directly — so it cannot ride the scenario sweep runner; the
/// scoped fan-out with a fixed output order is the same
/// determinism-from-output-discipline contract in miniature.
pub fn run(cfg: &Config) -> Vec<Outcome> {
    std::thread::scope(|scope| {
        let unprotected = scope.spawn(|| run_unprotected(cfg));
        let protected = run_protected(cfg);
        // lint: allow(unchecked-unwrap) — re-raising an attack-thread panic
        // aborts the experiment, which is the right outcome
        vec![unprotected.join().expect("attack thread"), protected]
    })
}

/// Renders the comparison.
pub fn render(outcomes: &[Outcome]) -> String {
    let mut table = Table::new(vec![
        "policy".into(),
        "attacker contexts".into(),
        "attacker channels".into(),
        "victim admitted".into(),
    ]);
    for o in outcomes {
        table.row(vec![
            if o.policy { "C / D-over-C" } else { "none" }.into(),
            o.attacker_contexts.to_string(),
            o.attacker_channels.to_string(),
            if o.victim_admitted { "yes" } else { "NO (DoS)" }.into(),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unprotected_device_is_denied_to_the_victim() {
        let outcome = run_unprotected(&Config::default());
        // The attacker exhausts the 48 contexts exactly as on the GTX670.
        assert_eq!(outcome.attacker_contexts, 48);
        assert!(!outcome.victim_admitted);
    }

    #[test]
    fn policy_contains_the_attacker() {
        let outcome = run_protected(&Config::default());
        assert!(outcome.attacker_channels <= 4);
        assert!(outcome.victim_admitted);
    }

    #[test]
    fn concurrent_run_matches_the_serial_order() {
        // The scoped fan-out must report exactly what the serial
        // calls report, unprotected first.
        let cfg = Config::default();
        assert_eq!(run(&cfg), vec![run_unprotected(&cfg), run_protected(&cfg)]);
    }

    #[test]
    fn policy_still_admits_up_to_d_over_c_tasks() {
        let cfg = Config::default();
        let quota = ChannelQuota::new(cfg.gpu.total_channels, cfg.per_task_limit);
        assert_eq!(quota.max_tasks(), 24);
    }
}
