//! Figure 5: standalone Throttle slowdown under each policy, across a
//! range of request sizes.
//!
//! The controlled companion to Figure 4: per-request interception cost
//! shrinks relative to request size, so the engaged Timeslice overhead
//! decays from severe (tens of percent at ~20 µs) to negligible at
//! 1.7 ms, while the disengaged policies stay flat and low.
//!
//! Every (size, scheduler) run is an independent deterministic cell,
//! so this harness rides `neon-scenario`'s parallel sweep runner: one
//! scenario per request size whose scheduler axis is direct access
//! followed by the compared policies, read back in plan order. The
//! results are identical to the old serial loop (equivalence-tested
//! below).

use neon_core::sched::SchedulerKind;
use neon_metrics::Table;
use neon_scenario::{sweep, ScenarioSpec, TenantGroup, WorkloadSpec};
use neon_sim::SimDuration;

use crate::runner;

/// Configuration of the Figure 5 sweep.
#[derive(Debug, Clone)]
pub struct Config {
    /// Horizon of each standalone run.
    pub horizon: SimDuration,
    /// RNG seed.
    pub seed: u64,
    /// Throttle request sizes.
    pub sizes: Vec<SimDuration>,
    /// Schedulers to compare against direct access.
    pub schedulers: Vec<SchedulerKind>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            horizon: runner::ALONE_HORIZON,
            seed: runner::DEFAULT_SEED,
            sizes: vec![
                SimDuration::from_micros(19),
                SimDuration::from_micros(50),
                SimDuration::from_micros(110),
                SimDuration::from_micros(220),
                SimDuration::from_micros(430),
                SimDuration::from_micros(860),
                SimDuration::from_micros(1700),
            ],
            schedulers: vec![
                SchedulerKind::Timeslice,
                SchedulerKind::DisengagedTimeslice,
                SchedulerKind::DisengagedFairQueueing,
            ],
        }
    }
}

impl Config {
    /// The reduced configuration used by `fig5 --check` in CI.
    pub fn check() -> Self {
        Config {
            horizon: SimDuration::from_millis(300),
            sizes: vec![SimDuration::from_micros(19), SimDuration::from_micros(1700)],
            schedulers: vec![SchedulerKind::Timeslice],
            ..Config::default()
        }
    }
}

/// Slowdowns at one request size.
#[derive(Debug, Clone)]
pub struct Row {
    /// Throttle request size.
    pub size: SimDuration,
    /// Per-scheduler slowdown relative to direct access.
    pub slowdowns: Vec<(SchedulerKind, f64)>,
}

impl Row {
    /// Slowdown under a specific scheduler, if measured.
    pub fn slowdown(&self, kind: SchedulerKind) -> Option<f64> {
        self.slowdowns
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, s)| *s)
    }
}

fn throttle_group(size: SimDuration) -> TenantGroup {
    TenantGroup::new(
        format!("throttle-{size}"),
        WorkloadSpec::Throttle {
            request: size,
            off_ratio: 0.0,
            // Throttle's constructor default; spelled out because the
            // scenario spec's default of 0.0 would diverge from the
            // serial harness this port must reproduce exactly.
            jitter: 0.02,
        },
    )
}

/// Runs the sweep through the parallel sweep runner: one scenario per
/// request size, with direct access leading each scenario's scheduler
/// axis as the normalization baseline.
pub fn run(cfg: &Config) -> Vec<Row> {
    let mut axis = vec![SchedulerKind::Direct];
    axis.extend(cfg.schedulers.iter().copied());
    let specs: Vec<ScenarioSpec> = cfg
        .sizes
        .iter()
        .map(|&size| {
            ScenarioSpec::new(format!("throttle-{size}"), cfg.horizon)
                .seeds(vec![cfg.seed])
                .schedulers(axis.clone())
                .group(throttle_group(size))
        })
        .collect();
    let cells = sweep::plan(specs);
    let outcome = sweep::run_parallel(&cells, None);
    // Plan order is scenario-major, scheduler-minor: cell
    // (i * |axis|) is size i under direct access, then the compared
    // policies in axis order.
    cfg.sizes
        .iter()
        .enumerate()
        .map(|(i, &size)| {
            let at = |k: usize| &outcome.results[i * axis.len() + k].report;
            let base = runner::mean_round(at(0), 0);
            let slowdowns = cfg
                .schedulers
                .iter()
                .enumerate()
                .map(|(k, &kind)| (kind, runner::mean_round(at(k + 1), 0).ratio(base)))
                .collect();
            Row { size, slowdowns }
        })
        .collect()
}

/// Renders the overhead table.
pub fn render(rows: &[Row]) -> String {
    let mut headers = vec!["request size".to_string()];
    if let Some(first) = rows.first() {
        for (kind, _) in &first.slowdowns {
            headers.push(format!("{} overhead", kind.label()));
        }
    }
    let mut table = Table::new(headers);
    for r in rows {
        let mut cells = vec![r.size.to_string()];
        for (_, s) in &r.slowdowns {
            cells.push(format!("{:+.1}%", (s - 1.0) * 100.0));
        }
        table.row(cells);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::RunSpec;
    use neon_workloads::throttle;

    #[test]
    fn sweep_runner_port_matches_the_serial_path() {
        // The scenario-backed run() must reproduce the legacy serial
        // run_alone loop exactly — same seed, workload jitter and
        // admission path — so every slowdown ratio is bit-identical.
        let cfg = Config {
            horizon: SimDuration::from_millis(250),
            sizes: vec![SimDuration::from_micros(50), SimDuration::from_micros(430)],
            schedulers: vec![
                SchedulerKind::Timeslice,
                SchedulerKind::DisengagedFairQueueing,
            ],
            ..Config::default()
        };
        let rows = run(&cfg);
        for (row, &size) in rows.iter().zip(&cfg.sizes) {
            let direct = RunSpec::new(SchedulerKind::Direct, cfg.horizon).with_seed(cfg.seed);
            let base_report = runner::run_alone(&direct, Box::new(throttle::saturating(size)));
            let base = runner::mean_round(&base_report, 0);
            for &(kind, slowdown) in &row.slowdowns {
                let spec = RunSpec::new(kind, cfg.horizon).with_seed(cfg.seed);
                let report = runner::run_alone(&spec, Box::new(throttle::saturating(size)));
                let serial = runner::mean_round(&report, 0).ratio(base);
                assert_eq!(slowdown, serial, "{size} under {}", kind.label());
            }
        }
    }

    #[test]
    fn engaged_overhead_decays_with_request_size() {
        let cfg = Config {
            horizon: SimDuration::from_millis(300),
            sizes: vec![SimDuration::from_micros(19), SimDuration::from_micros(1700)],
            schedulers: vec![SchedulerKind::Timeslice],
            ..Config::default()
        };
        let rows = run(&cfg);
        let small = rows[0].slowdown(SchedulerKind::Timeslice).unwrap();
        let large = rows[1].slowdown(SchedulerKind::Timeslice).unwrap();
        assert!(small > 1.3, "small requests must hurt ({small:.2})");
        assert!(large < 1.05, "large requests must not ({large:.2})");
    }
}
