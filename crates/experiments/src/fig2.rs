//! Figure 2: CDFs of request inter-arrival and service periods.
//!
//! The paper plots, for glxgears, oclParticles and oclSimpleTexture3D
//! running alone, the distribution of (a) the time between consecutive
//! request submissions and (b) request service times, over log₂(µs)
//! bins — evidence that "a large percentage of arriving requests are
//! short and submitted in short intervals".
//!
//! The three standalone runs are independent deterministic cells, so
//! this harness rides `neon-scenario`'s parallel sweep runner: one
//! request-recording single-cell scenario per application, fanned out
//! across OS threads and read back in plan order. The results are
//! identical to the old serial loop (equivalence-tested below).

use neon_core::sched::SchedulerKind;
use neon_metrics::Log2Cdf;
use neon_scenario::{sweep, ScenarioSpec, TenantGroup, WorkloadSpec};
use neon_sim::SimDuration;
use neon_workloads::app;

use crate::runner;

/// Number of log₂ bins (the paper's x-axis reaches 2¹⁷ µs).
pub const BINS: usize = 18;

/// Configuration of the Figure 2 harness.
#[derive(Debug, Clone)]
pub struct Config {
    /// Horizon of each standalone run.
    pub horizon: SimDuration,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            horizon: runner::ALONE_HORIZON,
            seed: runner::DEFAULT_SEED,
        }
    }
}

impl Config {
    /// The reduced configuration used by `fig2 --check` in CI.
    pub fn check() -> Self {
        Config {
            horizon: SimDuration::from_millis(200),
            ..Config::default()
        }
    }
}

/// Distributions for one application.
#[derive(Debug, Clone)]
pub struct Row {
    /// Application name.
    pub name: &'static str,
    /// Inter-arrival period distribution.
    pub inter_arrival: Log2Cdf,
    /// Service period distribution.
    pub service: Log2Cdf,
}

/// The three applications of Figure 2.
pub fn applications() -> Vec<&'static str> {
    vec!["glxgears", "oclParticles", "simpleTexture3D"]
}

/// Runs each application standalone — one request-recording cell per
/// application, through the parallel sweep runner — and collects the
/// distributions.
pub fn run(cfg: &Config) -> Vec<Row> {
    let specs: Vec<ScenarioSpec> = applications()
        .into_iter()
        .map(|name| {
            ScenarioSpec::new(format!("alone:{name}"), cfg.horizon)
                .seeds(vec![cfg.seed])
                .schedulers(vec![SchedulerKind::Direct])
                .record_requests(true)
                .group(TenantGroup::new(
                    name,
                    WorkloadSpec::App {
                        name: name.to_string(),
                    },
                ))
        })
        .collect();
    let cells = sweep::plan(specs);
    let outcome = sweep::run_parallel(&cells, None);
    // One cell per application, in push (= plan) order.
    applications()
        .into_iter()
        .zip(&outcome.results)
        .map(|(name, cell)| {
            // lint: allow(unchecked-unwrap) — iterates names taken from the
            // static app table itself
            let spec = app::app_by_name(name).expect("figure 2 app exists");
            let task = &cell.report.tasks[0];
            let mut inter_arrival = Log2Cdf::new(BINS);
            inter_arrival.extend(
                task.submit_times
                    .windows(2)
                    .map(|w| w[1].saturating_duration_since(w[0])),
            );
            let mut service = Log2Cdf::new(BINS);
            service.extend(task.service_times.iter().copied());
            Row {
                name: spec.name,
                inter_arrival,
                service,
            }
        })
        .collect()
}

/// Renders both CDFs as text tables (bin → cumulative %).
pub fn render(rows: &[Row]) -> String {
    let mut out = String::new();
    for (title, pick_arrival) in [
        ("Request Inter-Arrival Period", true),
        ("Request Service Period", false),
    ] {
        out.push_str(&format!("== {title} (log2 us bins, cumulative %) ==\n"));
        out.push_str("bin");
        for r in rows {
            out.push_str(&format!("  {:>16}", r.name));
        }
        out.push('\n');
        for bin in 0..BINS {
            out.push_str(&format!("{bin:>3}"));
            for r in rows {
                let cdf = if pick_arrival {
                    &r.inter_arrival
                } else {
                    &r.service
                };
                out.push_str(&format!("  {:>15.1}%", cdf.cumulative_percent(bin)));
            }
            out.push('\n');
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::RunSpec;

    #[test]
    fn sweep_runner_port_matches_the_serial_path() {
        // The scenario-backed run() must reproduce the legacy serial
        // run_alone loop exactly: same request-recording flag, seed
        // and admission path, so the CDFs are bin-for-bin identical.
        let cfg = Config {
            horizon: SimDuration::from_millis(200),
            ..Config::default()
        };
        let rows = run(&cfg);
        for (row, name) in rows.iter().zip(applications()) {
            let run_spec = RunSpec::new(SchedulerKind::Direct, cfg.horizon)
                .with_seed(cfg.seed)
                .recording();
            let spec = app::app_by_name(name).unwrap();
            let report = runner::run_alone(&run_spec, Box::new(spec.build()));
            let task = &report.tasks[0];
            let mut inter_arrival = Log2Cdf::new(BINS);
            inter_arrival.extend(
                task.submit_times
                    .windows(2)
                    .map(|w| w[1].saturating_duration_since(w[0])),
            );
            let mut service = Log2Cdf::new(BINS);
            service.extend(task.service_times.iter().copied());
            assert_eq!(row.inter_arrival, inter_arrival, "{name}");
            assert_eq!(row.service, service, "{name}");
        }
    }

    #[test]
    fn short_requests_dominate() {
        let cfg = Config {
            horizon: SimDuration::from_millis(200),
            ..Config::default()
        };
        let rows = run(&cfg);
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(r.inter_arrival.total() > 100, "{}: too few samples", r.name);
            // The paper's observation: a large share of requests arrive
            // back-to-back (within ~10µs of the previous one, bin ≤ 3).
            assert!(
                r.inter_arrival.cumulative_percent(3) > 30.0,
                "{}: inter-arrival not short enough ({:.0}%)",
                r.name,
                r.inter_arrival.cumulative_percent(3)
            );
            // Service times sit below ~1ms (bin 10).
            assert!(
                r.service.cumulative_percent(10) > 95.0,
                "{}: services too long",
                r.name
            );
        }
    }
}
