//! Figure 8: fairness and efficiency with four concurrent
//! applications.
//!
//! One large-request Throttle plus three small-request applications
//! (BinarySearch, DCT, FFT). With four co-runners the expected fair
//! slowdown is 4–5×; efficiency drops more under the fully engaged
//! scheduler than under the disengaged ones.
//!
//! Each scheduler column and each standalone baseline is an
//! independent deterministic cell, so the harness rides
//! `neon-scenario`'s parallel sweep runner; the four-way mix is a
//! static all-at-start scenario and reproduces the old serial loop
//! exactly (equivalence-tested below).

use neon_core::sched::SchedulerKind;
use neon_metrics::{fairness, Table};
use neon_scenario::{sweep, ScenarioSpec, TenantGroup, WorkloadSpec};
use neon_sim::SimDuration;

use crate::runner;

/// Configuration of the Figure 8 run.
#[derive(Debug, Clone)]
pub struct Config {
    /// Horizon of the four-way run.
    pub horizon: SimDuration,
    /// RNG seed.
    pub seed: u64,
    /// Throttle request size (the paper uses a large-request Throttle).
    pub throttle_size: SimDuration,
    /// Schedulers to compare.
    pub schedulers: Vec<SchedulerKind>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            horizon: SimDuration::from_millis(3_000),
            seed: runner::DEFAULT_SEED,
            throttle_size: SimDuration::from_micros(1_700),
            schedulers: SchedulerKind::PAPER.to_vec(),
        }
    }
}

/// Outcome of the four-way mix under one scheduler.
#[derive(Debug, Clone)]
pub struct Row {
    /// Scheduler.
    pub scheduler: SchedulerKind,
    /// Per-task `(name, slowdown)` — Throttle, BinarySearch, DCT, FFT.
    pub slowdowns: Vec<(String, f64)>,
    /// Concurrency efficiency of the mix.
    pub efficiency: f64,
}

fn groups(cfg: &Config) -> Vec<TenantGroup> {
    let mut groups = vec![TenantGroup::new(
        "throttle",
        WorkloadSpec::Throttle {
            request: cfg.throttle_size,
            off_ratio: 0.0,
            // Throttle's constructor default; the scenario-spec default
            // of 0.0 would diverge from the serial harness.
            jitter: 0.02,
        },
    )];
    for app in ["BinarySearch", "DCT", "FFT"] {
        groups.push(TenantGroup::new(
            app,
            WorkloadSpec::App {
                name: app.to_string(),
            },
        ));
    }
    groups
}

/// Runs the four-way comparison under each scheduler, in parallel:
/// one single-cell baseline scenario per workload plus one mix
/// scenario whose scheduler axis is the figure's columns.
pub fn run(cfg: &Config) -> Vec<Row> {
    let members = groups(cfg);
    let mut specs: Vec<ScenarioSpec> = members
        .iter()
        .map(|g| {
            ScenarioSpec::new(format!("alone:{}", g.name), runner::ALONE_HORIZON)
                .seeds(vec![cfg.seed])
                .schedulers(vec![SchedulerKind::Direct])
                .group(g.clone())
        })
        .collect();
    let mut mix = ScenarioSpec::new("fig8-mix", cfg.horizon)
        .seeds(vec![cfg.seed])
        .schedulers(cfg.schedulers.clone());
    for g in &members {
        mix = mix.group(g.clone());
    }
    specs.push(mix);

    let cells = sweep::plan(specs);
    let outcome = sweep::run_parallel(&cells, None);

    let alone: Vec<SimDuration> = (0..members.len())
        .map(|i| runner::mean_round(&outcome.results[i].report, 0))
        .collect();
    cfg.schedulers
        .iter()
        .enumerate()
        .map(|(k, &scheduler)| {
            let report = &outcome.results[members.len() + k].report;
            let mut pairs = Vec::new();
            let mut slowdowns = Vec::new();
            for (i, t) in report.tasks.iter().enumerate() {
                let concurrent = t.mean_round(runner::WARMUP).unwrap_or(SimDuration::ZERO);
                let slowdown = if concurrent.is_zero() {
                    f64::INFINITY
                } else {
                    fairness::slowdown(alone[i], concurrent)
                };
                pairs.push((alone[i], concurrent));
                slowdowns.push((t.name.clone(), slowdown));
            }
            Row {
                scheduler,
                slowdowns,
                efficiency: fairness::concurrency_efficiency(&pairs),
            }
        })
        .collect()
}

/// Renders the fairness bars plus the efficiency line.
pub fn render(rows: &[Row]) -> String {
    let mut headers = vec!["scheduler".to_string()];
    if let Some(first) = rows.first() {
        for (name, _) in &first.slowdowns {
            headers.push(name.clone());
        }
    }
    headers.push("efficiency".into());
    let mut table = Table::new(headers);
    for r in rows {
        let mut cells = vec![r.scheduler.label().to_string()];
        for (_, s) in &r.slowdowns {
            cells.push(format!("{s:.2}x"));
        }
        cells.push(format!("{:.2}", r.efficiency));
        table.row(cells);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pairwise::{self, PairwiseConfig};
    use neon_workloads::{app, throttle};

    #[test]
    fn disengaged_ts_keeps_four_way_slowdowns_near_fair() {
        let cfg = Config {
            horizon: SimDuration::from_millis(1_200),
            schedulers: vec![SchedulerKind::DisengagedTimeslice],
            ..Config::default()
        };
        let rows = run(&cfg);
        for (name, s) in &rows[0].slowdowns {
            assert!(
                (2.5..6.5).contains(s),
                "{name}: slowdown {s:.2} outside 4-way fair band"
            );
        }
    }

    #[test]
    fn sweep_runner_port_matches_the_serial_pairwise_path() {
        let cfg = Config {
            horizon: SimDuration::from_millis(800),
            schedulers: vec![SchedulerKind::DisengagedFairQueueing],
            ..Config::default()
        };
        let rows = run(&cfg);

        let pair = PairwiseConfig {
            scheduler: SchedulerKind::DisengagedFairQueueing,
            workloads: vec![
                Box::new(throttle::saturating(cfg.throttle_size)),
                Box::new(app::binary_search()),
                Box::new(app::dct()),
                Box::new(app::fft()),
            ],
            horizon: cfg.horizon,
            seed: cfg.seed,
            cost: None,
            params: None,
        };
        let serial = pairwise::run(&pair);
        assert_eq!(rows[0].efficiency, serial.efficiency);
        for (ported, old) in rows[0].slowdowns.iter().zip(&serial.tasks) {
            assert_eq!(ported.0, old.name);
            assert_eq!(ported.1, old.slowdown, "{}", old.name);
        }
    }
}
