//! Figure 8: fairness and efficiency with four concurrent
//! applications.
//!
//! One large-request Throttle plus three small-request applications
//! (BinarySearch, DCT, FFT). With four co-runners the expected fair
//! slowdown is 4–5×; efficiency drops more under the fully engaged
//! scheduler than under the disengaged ones.

use neon_core::sched::SchedulerKind;
use neon_core::workload::BoxedWorkload;
use neon_metrics::Table;
use neon_sim::SimDuration;
use neon_workloads::{app, throttle};

use crate::pairwise::{self, PairwiseConfig};
use crate::runner;

/// Configuration of the Figure 8 run.
#[derive(Debug, Clone)]
pub struct Config {
    /// Horizon of the four-way run.
    pub horizon: SimDuration,
    /// RNG seed.
    pub seed: u64,
    /// Throttle request size (the paper uses a large-request Throttle).
    pub throttle_size: SimDuration,
    /// Schedulers to compare.
    pub schedulers: Vec<SchedulerKind>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            horizon: SimDuration::from_millis(3_000),
            seed: runner::DEFAULT_SEED,
            throttle_size: SimDuration::from_micros(1_700),
            schedulers: SchedulerKind::PAPER.to_vec(),
        }
    }
}

/// Outcome of the four-way mix under one scheduler.
#[derive(Debug, Clone)]
pub struct Row {
    /// Scheduler.
    pub scheduler: SchedulerKind,
    /// Per-task `(name, slowdown)` — Throttle, BinarySearch, DCT, FFT.
    pub slowdowns: Vec<(String, f64)>,
    /// Concurrency efficiency of the mix.
    pub efficiency: f64,
}

fn workloads(cfg: &Config) -> Vec<BoxedWorkload> {
    vec![
        Box::new(throttle::saturating(cfg.throttle_size)),
        Box::new(app::binary_search()),
        Box::new(app::dct()),
        Box::new(app::fft()),
    ]
}

/// Runs the four-way comparison under each scheduler.
pub fn run(cfg: &Config) -> Vec<Row> {
    let mut cache = runner::AloneCache::new(runner::ALONE_HORIZON, cfg.seed);
    cfg.schedulers
        .iter()
        .map(|&scheduler| {
            let pair = PairwiseConfig {
                scheduler,
                workloads: workloads(cfg),
                horizon: cfg.horizon,
                seed: cfg.seed,
                cost: None,
                params: None,
            };
            let result = pairwise::run_with_cache(&pair, &mut cache);
            Row {
                scheduler,
                slowdowns: result
                    .tasks
                    .iter()
                    .map(|t| (t.name.clone(), t.slowdown))
                    .collect(),
                efficiency: result.efficiency,
            }
        })
        .collect()
}

/// Renders the fairness bars plus the efficiency line.
pub fn render(rows: &[Row]) -> String {
    let mut headers = vec!["scheduler".to_string()];
    if let Some(first) = rows.first() {
        for (name, _) in &first.slowdowns {
            headers.push(name.clone());
        }
    }
    headers.push("efficiency".into());
    let mut table = Table::new(headers);
    for r in rows {
        let mut cells = vec![r.scheduler.label().to_string()];
        for (_, s) in &r.slowdowns {
            cells.push(format!("{s:.2}x"));
        }
        cells.push(format!("{:.2}", r.efficiency));
        table.row(cells);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disengaged_ts_keeps_four_way_slowdowns_near_fair() {
        let cfg = Config {
            horizon: SimDuration::from_millis(1_200),
            schedulers: vec![SchedulerKind::DisengagedTimeslice],
            ..Config::default()
        };
        let rows = run(&cfg);
        for (name, s) in &rows[0].slowdowns {
            assert!(
                (2.5..6.5).contains(s),
                "{name}: slowdown {s:.2} outside 4-way fair band"
            );
        }
    }
}
