//! Figure P (beyond the paper): placement quality on multi-GPU hosts.
//!
//! The paper evaluates one GPU; on a multi-device host the OS also
//! chooses *where* each arriving process lands, and that choice
//! interacts with the interconnect: a near device may be crowded, a far
//! device costs a working-set transfer to reach (and again on every
//! migration). This harness compares every placement policy — the flat
//! trio (least-loaded, round-robin, fewest-tenants), the degenerate
//! pinned baseline, and the topology-aware pair (locality-first,
//! cost-min) — under identical open-loop churn on two four-device
//! hosts:
//!
//! - **symmetric** — four identical devices under one PCIe switch;
//! - **heterogeneous** — two full-size devices on NUMA 0 (different
//!   switches) plus two half-capacity devices across the NUMA hop.
//!
//! Both use PCIe-gen3 interconnect timing, so admission staging and
//! rebalancing migrations charge working-set × link tier. Every cell is
//! an independent deterministic `World` fanned out through
//! `neon-scenario`'s parallel sweep runner; the JSON/CSV emission is
//! the scenario engine's, so per-device utilization/rejection/migration
//! columns come along for free.

use neon_core::placement::PlacementKind;
use neon_core::rebalance::RebalanceKind;
use neon_core::sched::SchedulerKind;
use neon_gpu::{DeviceSlotSpec, GpuConfig, InterconnectParams};
use neon_metrics::Table;
use neon_scenario::{
    emit, sweep, ArrivalSpec, LifetimeSpec, ScenarioSpec, SweepOutcome, TenantGroup, WorkloadSpec,
};
use neon_sim::SimDuration;

use crate::runner;

/// Configuration of the placement-quality sweep.
#[derive(Debug, Clone)]
pub struct Config {
    /// Horizon of each cell.
    pub horizon: SimDuration,
    /// Seeds to sweep (results are averaged across them).
    pub seeds: Vec<u64>,
    /// Schedulers to cross with the placement axis.
    pub schedulers: Vec<SchedulerKind>,
    /// Placement policies under comparison.
    pub placements: Vec<PlacementKind>,
    /// Rebalancing policies compared on the heterogeneous host (the
    /// symmetric host keeps the count-diff baseline: on a one-switch
    /// topology every migration crosses the same link, so the policy
    /// dimension is only interesting where link tiers differ).
    pub rebalances: Vec<RebalanceKind>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            horizon: SimDuration::from_millis(400),
            seeds: vec![runner::DEFAULT_SEED],
            schedulers: vec![SchedulerKind::Direct, SchedulerKind::DisengagedFairQueueing],
            placements: Self::placements(),
            rebalances: vec![RebalanceKind::CountDiff, RebalanceKind::CostAware],
        }
    }
}

impl Config {
    /// The full placement axis: the five sweepable policies plus the
    /// pinned-to-device-0 degenerate baseline (6 total).
    pub fn placements() -> Vec<PlacementKind> {
        let mut p = PlacementKind::ALL.to_vec();
        p.push(PlacementKind::Pinned(0));
        p
    }

    /// A reduced configuration for CI check mode: one scheduler, a
    /// short horizon, the full placement axis.
    pub fn check() -> Self {
        Config {
            horizon: SimDuration::from_millis(80),
            schedulers: vec![SchedulerKind::Direct],
            ..Config::default()
        }
    }
}

/// The churn mix shared by both topologies: four long-lived residents
/// plus an open-loop stream of heavier tenants with ~40 ms stays and a
/// 256 MiB working set (expensive to stage across the NUMA hop).
fn groups() -> Vec<TenantGroup> {
    vec![
        TenantGroup::new(
            "resident",
            WorkloadSpec::FixedLoop {
                service: SimDuration::from_micros(150),
                gap: SimDuration::from_micros(10),
                rounds: None,
            },
        )
        .count(4),
        TenantGroup::new(
            "churner",
            WorkloadSpec::Throttle {
                request: SimDuration::from_micros(400),
                off_ratio: 0.0,
                jitter: 0.0,
            },
        )
        .count(24)
        .arrival(ArrivalSpec::Poisson {
            rate_hz: 120.0,
            start: SimDuration::from_millis(5),
        })
        .lifetime(LifetimeSpec::Exponential {
            mean: SimDuration::from_millis(40),
        })
        .working_set(256 << 20),
    ]
}

fn base_spec(name: &str, cfg: &Config) -> ScenarioSpec {
    let mut spec = ScenarioSpec::new(name, cfg.horizon)
        .seeds(cfg.seeds.clone())
        .schedulers(cfg.schedulers.clone())
        .placements(cfg.placements.clone())
        .rebalance(RebalanceKind::CountDiff)
        .interconnect(InterconnectParams::pcie_gen3());
    for g in groups() {
        spec = spec.group(g);
    }
    spec
}

/// The symmetric host: four identical devices under one switch,
/// rebalanced by the count-diff baseline.
pub fn symmetric_spec(cfg: &Config) -> ScenarioSpec {
    let mut spec = base_spec("figP-symmetric", cfg);
    for _ in 0..4 {
        spec = spec.device_slot(DeviceSlotSpec::near(GpuConfig::default()));
    }
    spec
}

/// The heterogeneous host: two full-size near devices on separate
/// switches of NUMA 0, two half-capacity devices sharing a switch
/// across the NUMA hop. Migrations here cross real link tiers, so
/// this host additionally sweeps the rebalancing-policy axis
/// ([`Config::rebalances`]) — the comparison that shows whether
/// cost-aware migration pays.
pub fn hetero_spec(cfg: &Config) -> ScenarioSpec {
    let far = GpuConfig {
        total_channels: 48,
        total_contexts: 24,
        ..GpuConfig::default()
    };
    base_spec("figP-hetero", cfg)
        .rebalances(cfg.rebalances.clone())
        .device_slot(DeviceSlotSpec {
            config: GpuConfig::default(),
            numa: 0,
            switch_id: 0,
        })
        .device_slot(DeviceSlotSpec {
            config: GpuConfig::default(),
            numa: 0,
            switch_id: 1,
        })
        .device_slot(DeviceSlotSpec {
            config: far.clone(),
            numa: 1,
            switch_id: 2,
        })
        .device_slot(DeviceSlotSpec {
            config: far,
            numa: 1,
            switch_id: 2,
        })
}

/// One (topology, scheduler, placement, rebalance) comparison row,
/// averaged over seeds.
#[derive(Debug, Clone)]
pub struct Row {
    /// Topology name (`figP-symmetric` / `figP-hetero`).
    pub topology: String,
    /// Scheduler of the cells behind this row.
    pub scheduler: SchedulerKind,
    /// Placement policy under comparison.
    pub placement: PlacementKind,
    /// Rebalancing policy of the cells behind this row.
    pub rebalance: RebalanceKind,
    /// Mean rounds completed per run.
    pub total_rounds: f64,
    /// Mean arrivals turned away per run.
    pub rejected: f64,
    /// Mean rebalancing migrations per run.
    pub migrations: f64,
    /// Mean time tasks spent stalled on working-set movement per run.
    pub transfer_stall: SimDuration,
    /// Mean Jain fairness index.
    pub fairness: f64,
    /// Mean 95th-percentile round time.
    pub round_p95: SimDuration,
}

/// Outcome of the harness: the aggregated rows plus the raw sweep for
/// JSON/CSV emission.
#[derive(Debug)]
pub struct FigP {
    /// Aggregated comparison rows, topology-major, scheduler-, then
    /// placement-minor (the plan order).
    pub rows: Vec<Row>,
    /// The raw parallel sweep (one cell per topology × scheduler ×
    /// placement × seed).
    pub outcome: SweepOutcome,
}

impl FigP {
    /// The sweep as the scenario engine's JSON document (per-cell
    /// summaries with per-device columns).
    pub fn to_json(&self) -> String {
        emit::to_json(&self.outcome)
    }

    /// The sweep as CSV, one row per cell.
    pub fn to_csv(&self) -> String {
        emit::to_csv(&self.outcome)
    }
}

/// Runs both topologies' full placement × scheduler × seed matrices in
/// parallel and aggregates per-placement rows.
pub fn run(cfg: &Config) -> FigP {
    let specs = vec![symmetric_spec(cfg), hetero_spec(cfg)];
    for spec in &specs {
        // lint: allow(unchecked-unwrap) — specs are built in this file; an
        // invalid one is a programming error
        spec.validate().expect("figP scenarios must be valid");
    }
    let cells = sweep::plan(specs);
    let outcome = sweep::run_parallel(&cells, None);

    // Plan order: scenario-major, then scheduler, then placement, then
    // rebalance, then seed — each row aggregates one contiguous seed
    // block.
    let per_seed = cfg.seeds.len();
    let mut rows = Vec::new();
    for chunk in outcome.results.chunks(per_seed) {
        let n = chunk.len() as f64;
        let first = &chunk[0].summary;
        debug_assert!(chunk.iter().all(|c| c.summary.placement == first.placement
            && c.summary.scheduler == first.scheduler
            && c.summary.rebalance == first.rebalance
            && c.summary.scenario == first.scenario));
        let mean = |f: &dyn Fn(&neon_scenario::CellSummary) -> f64| {
            chunk.iter().map(|c| f(&c.summary)).sum::<f64>() / n
        };
        rows.push(Row {
            topology: first.scenario.clone(),
            scheduler: first.scheduler,
            placement: first.placement,
            rebalance: first.rebalance,
            total_rounds: mean(&|s| s.total_rounds as f64),
            rejected: mean(&|s| s.rejected as f64),
            migrations: mean(&|s| s.migrations as f64),
            transfer_stall: SimDuration::from_micros_f64(mean(&|s| {
                s.transfer_stall.as_micros_f64()
            })),
            fairness: mean(&|s| s.fairness),
            round_p95: SimDuration::from_micros_f64(mean(&|s| s.round_p95.as_micros_f64())),
        });
    }
    FigP { rows, outcome }
}

/// Renders the aggregated comparison table.
pub fn render(rows: &[Row]) -> String {
    let mut table = Table::new(vec![
        "topology".into(),
        "scheduler".into(),
        "placement".into(),
        "rebalance".into(),
        "rounds".into(),
        "rej".into(),
        "migr".into(),
        "stall".into(),
        "fairness".into(),
        "p95".into(),
    ]);
    for r in rows {
        table.row(vec![
            r.topology.clone(),
            r.scheduler.label().into(),
            r.placement.to_string(),
            r.rebalance.to_string(),
            format!("{:.0}", r.total_rounds),
            format!("{:.1}", r.rejected),
            format!("{:.1}", r.migrations),
            format!("{}", r.transfer_stall),
            format!("{:.3}", r.fairness),
            format!("{}", r.round_p95),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_six_placements_on_both_topologies() {
        let cfg = Config::check();
        let fig = run(&cfg);
        assert_eq!(cfg.placements.len(), 6, "the axis must stay >= 6 policies");
        assert_eq!(cfg.rebalances.len(), 2, "count-diff vs cost-aware");
        assert_eq!(
            fig.rows.len(),
            18,
            "1 scheduler x 6 placements x (1 symmetric + 2 hetero rebalances)"
        );
        let covered: Vec<_> = fig
            .rows
            .iter()
            .filter(|r| r.topology == "figP-symmetric")
            .map(|r| r.placement)
            .collect();
        assert_eq!(covered, cfg.placements, "symmetric placement coverage");
        for &rebalance in &cfg.rebalances {
            let covered: Vec<_> = fig
                .rows
                .iter()
                .filter(|r| r.topology == "figP-hetero" && r.rebalance == rebalance)
                .map(|r| r.placement)
                .collect();
            assert_eq!(
                covered, cfg.placements,
                "hetero/{rebalance} placement coverage"
            );
        }
        // Every cell made progress; the aggregation preserved that.
        for r in &fig.rows {
            assert!(
                r.total_rounds > 0.0,
                "{}/{} made no progress",
                r.topology,
                r.placement
            );
            assert!((0.0..=1.0).contains(&r.fairness));
        }
        // Staging across a PCIe-gen3 interconnect is never free here.
        assert!(
            fig.rows
                .iter()
                .all(|r| r.transfer_stall > SimDuration::ZERO),
            "working-set staging must be charged on both topologies"
        );
    }

    #[test]
    fn emits_json_and_csv_with_topology_and_placement_columns() {
        let mut cfg = Config::check();
        cfg.horizon = SimDuration::from_millis(40);
        let fig = run(&cfg);
        let json = fig.to_json();
        for needle in [
            "figP-symmetric",
            "figP-hetero",
            "\"placement\": \"locality-first\"",
            "\"placement\": \"cost-min\"",
            "\"placement\": \"pinned:0\"",
            "\"rebalance\": \"count-diff\"",
            "\"rebalance\": \"cost-aware\"",
            "\"transfer_stall_us\":",
            "\"per_device\": [{\"device\": 0",
        ] {
            assert!(json.contains(needle), "JSON lacks {needle}: {json}");
        }
        let csv = fig.to_csv();
        let header = csv.lines().next().unwrap();
        assert!(header.contains("transfer_stall_us"), "{header}");
        assert!(header.contains(",rebalance,"), "{header}");
        assert!(header.contains("dev3_migr"), "{header}");
        assert!(csv.contains("cost-min"));
        assert!(csv.contains("cost-aware"));
        assert_eq!(
            csv.lines().count() - 1,
            fig.outcome.results.len(),
            "one CSV row per cell"
        );
    }

    #[test]
    fn pinned_rejects_where_spreading_policies_do_not() {
        // The degenerate baseline must be measurably worse: pinning 24
        // churners + 4 residents to one device exhausts it while the
        // spreading policies reject nobody.
        let cfg = Config {
            horizon: SimDuration::from_millis(150),
            schedulers: vec![SchedulerKind::Direct],
            ..Config::default()
        };
        let fig = run(&cfg);
        let hetero_pinned = fig
            .rows
            .iter()
            .find(|r| {
                r.topology == "figP-hetero"
                    && r.placement == PlacementKind::Pinned(0)
                    && r.rebalance == RebalanceKind::CountDiff
            })
            .unwrap();
        let hetero_ll = fig
            .rows
            .iter()
            .find(|r| {
                r.topology == "figP-hetero"
                    && r.placement == PlacementKind::LeastLoaded
                    && r.rebalance == RebalanceKind::CountDiff
            })
            .unwrap();
        assert!(
            hetero_pinned.total_rounds < hetero_ll.total_rounds,
            "pinned ({:.0}) must trail least-loaded ({:.0})",
            hetero_pinned.total_rounds,
            hetero_ll.total_rounds
        );
    }

    /// The issue's acceptance criterion: on the heterogeneous 4-GPU
    /// host, cost-aware rebalancing migrates no more (and stalls no
    /// longer on the wire) than the charge-blind baseline, while the
    /// p95 round time regresses by at most 5 %.
    #[test]
    fn cost_aware_beats_count_diff_on_the_hetero_host() {
        let cfg = Config {
            horizon: SimDuration::from_millis(200),
            schedulers: vec![SchedulerKind::Direct],
            ..Config::default()
        };
        let fig = run(&cfg);
        let sum = |rebalance: RebalanceKind, f: &dyn Fn(&Row) -> f64| {
            fig.rows
                .iter()
                .filter(|r| r.topology == "figP-hetero" && r.rebalance == rebalance)
                .map(f)
                .sum::<f64>()
        };
        let migr = |k| sum(k, &|r| r.migrations);
        let stall = |k| sum(k, &|r| r.transfer_stall.as_micros_f64());
        let p95 = |k| sum(k, &|r| r.round_p95.as_micros_f64());
        assert!(
            migr(RebalanceKind::CountDiff) >= 1.0,
            "the baseline must actually migrate under this churn, else \
             the comparison is vacuous"
        );
        assert!(
            migr(RebalanceKind::CostAware) <= migr(RebalanceKind::CountDiff),
            "cost-aware migrated more ({}) than count-diff ({})",
            migr(RebalanceKind::CostAware),
            migr(RebalanceKind::CountDiff)
        );
        assert!(
            stall(RebalanceKind::CostAware) <= stall(RebalanceKind::CountDiff),
            "cost-aware stalled longer ({:.0} us) than count-diff ({:.0} us)",
            stall(RebalanceKind::CostAware),
            stall(RebalanceKind::CountDiff)
        );
        assert!(
            p95(RebalanceKind::CostAware) <= p95(RebalanceKind::CountDiff) * 1.05,
            "cost-aware p95 ({:.0} us) regressed past 5% of count-diff ({:.0} us)",
            p95(RebalanceKind::CostAware),
            p95(RebalanceKind::CountDiff)
        );
    }
}
