//! Generic multiprogrammed comparison: run a set of workloads together
//! under one scheduler and compare each against its standalone
//! direct-access baseline (the methodology of §5.3).

use neon_core::cost::{CostModel, SchedParams};
use neon_core::sched::SchedulerKind;
use neon_core::workload::BoxedWorkload;
use neon_core::RunReport;
use neon_metrics::fairness;
use neon_sim::SimDuration;

use crate::runner::{self, RunSpec};

/// Configuration of one multiprogrammed comparison.
#[derive(Clone)]
pub struct PairwiseConfig {
    /// Scheduler under test.
    pub scheduler: SchedulerKind,
    /// The co-running workloads.
    pub workloads: Vec<BoxedWorkload>,
    /// Simulated duration of the concurrent run (baselines use
    /// [`runner::ALONE_HORIZON`]).
    pub horizon: SimDuration,
    /// RNG seed.
    pub seed: u64,
    /// Cost-model override (ablations); `None` uses defaults.
    pub cost: Option<CostModel>,
    /// Policy-parameter override (ablations); `None` uses defaults.
    pub params: Option<SchedParams>,
}

impl PairwiseConfig {
    /// A default-cost configuration.
    pub fn new(scheduler: SchedulerKind, workloads: Vec<BoxedWorkload>) -> Self {
        PairwiseConfig {
            scheduler,
            workloads,
            horizon: runner::MIX_HORIZON,
            seed: runner::DEFAULT_SEED,
            cost: None,
            params: None,
        }
    }
}

impl std::fmt::Debug for PairwiseConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PairwiseConfig")
            .field("scheduler", &self.scheduler)
            .field("workloads", &self.workloads.len())
            .field("horizon", &self.horizon)
            .field("seed", &self.seed)
            .finish()
    }
}

/// Per-task outcome of a comparison.
#[derive(Debug, Clone)]
pub struct TaskOutcome {
    /// Workload name.
    pub name: String,
    /// Standalone mean round (direct access).
    pub alone: SimDuration,
    /// Mean round in the mix.
    pub concurrent: SimDuration,
    /// `concurrent / alone` (Figure 6's normalized runtime).
    pub slowdown: f64,
    /// Ground-truth device usage in the mix.
    pub usage: SimDuration,
    /// Whether the scheduler killed the task.
    pub killed: bool,
}

/// Result of one multiprogrammed comparison.
#[derive(Debug, Clone)]
pub struct PairwiseResult {
    /// Per-task outcomes, in admission order.
    pub tasks: Vec<TaskOutcome>,
    /// The paper's concurrency-efficiency metric Σ(tᵢ/tᶜᵢ).
    pub efficiency: f64,
    /// The full report of the concurrent run.
    pub report: RunReport,
}

/// Runs the comparison, computing standalone baselines internally.
pub fn run(cfg: &PairwiseConfig) -> PairwiseResult {
    let mut cache = runner::AloneCache::new(runner::ALONE_HORIZON, cfg.seed);
    run_with_cache(cfg, &mut cache)
}

/// Runs the comparison reusing a baseline cache (for sweeps).
pub fn run_with_cache(cfg: &PairwiseConfig, cache: &mut runner::AloneCache) -> PairwiseResult {
    let alone: Vec<SimDuration> = cfg.workloads.iter().map(|w| cache.round(w)).collect();
    let mut spec = RunSpec::new(cfg.scheduler, cfg.horizon).with_seed(cfg.seed);
    if let Some(cost) = cfg.cost.clone() {
        spec = spec.with_cost(cost);
    }
    if let Some(params) = cfg.params.clone() {
        spec = spec.with_params(params);
    }
    let report = runner::run_mix(&spec, cfg.workloads.clone());

    let mut tasks = Vec::new();
    let mut pairs = Vec::new();
    for (i, t) in report.tasks.iter().enumerate() {
        let concurrent = t.mean_round(runner::WARMUP).unwrap_or(SimDuration::ZERO);
        let slowdown = if concurrent.is_zero() {
            f64::INFINITY
        } else {
            fairness::slowdown(alone[i], concurrent)
        };
        pairs.push((alone[i], concurrent));
        tasks.push(TaskOutcome {
            name: t.name.clone(),
            alone: alone[i],
            concurrent,
            slowdown,
            usage: t.usage,
            killed: t.killed,
        });
    }
    let efficiency = fairness::concurrency_efficiency(&pairs);
    PairwiseResult {
        tasks,
        efficiency,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neon_workloads::Throttle;

    #[test]
    fn equal_throttles_split_evenly_under_dfq() {
        let cfg = PairwiseConfig {
            scheduler: SchedulerKind::DisengagedFairQueueing,
            workloads: vec![
                Box::new(Throttle::new(SimDuration::from_micros(100))),
                Box::new(Throttle::new(SimDuration::from_micros(100))),
            ],
            horizon: SimDuration::from_millis(600),
            seed: 7,
            cost: None,
            params: None,
        };
        // Same name means the alone cache collapses them — rename one.
        let mut cfg = cfg;
        cfg.workloads[1] = Box::new(
            Throttle::new(SimDuration::from_micros(101)), // distinct name
        );
        let result = run(&cfg);
        for t in &result.tasks {
            assert!(
                t.slowdown > 1.4 && t.slowdown < 2.9,
                "{}: slowdown {:.2} outside fair band",
                t.name,
                t.slowdown
            );
        }
    }
}
