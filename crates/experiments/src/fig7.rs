//! Figure 7: concurrency efficiency of the Figure 6 runs.
//!
//! Efficiency is Σᵢ(tᵢ/tᶜᵢ) over the co-runners (see
//! [`neon_metrics::fairness::concurrency_efficiency`]): <1.0 means
//! device time was lost to scheduling or context switching, >1.0 means
//! synergy. The paper's ordering — engaged Timeslice loses the most,
//! Disengaged Timeslice less, Disengaged Fair Queueing the least — is
//! the figure's point.
//!
//! The runs are shared with Figure 6, which rides `neon-scenario`'s
//! parallel sweep runner — so this projection is parallel (and
//! serial-equivalence-tested) by construction.

use neon_metrics::Table;

use crate::fig6;

/// Configuration: identical to Figure 6's (the runs are shared).
pub type Config = fig6::Config;

/// One efficiency cell.
#[derive(Debug, Clone)]
pub struct Row {
    /// Application family.
    pub app: &'static str,
    /// Throttle request size.
    pub throttle_size: neon_sim::SimDuration,
    /// Scheduler.
    pub scheduler: neon_core::sched::SchedulerKind,
    /// Concurrency efficiency Σ(tᵢ/tᶜᵢ).
    pub efficiency: f64,
}

/// Runs the Figure 6 sweep and projects the efficiency column.
pub fn run(cfg: &Config) -> Vec<Row> {
    from_fig6(&fig6::run(cfg))
}

/// Projects efficiency rows out of already-computed Figure 6 rows.
pub fn from_fig6(rows: &[fig6::Row]) -> Vec<Row> {
    rows.iter()
        .map(|r| Row {
            app: r.app,
            throttle_size: r.throttle_size,
            scheduler: r.scheduler,
            efficiency: r.efficiency,
        })
        .collect()
}

/// Renders the efficiency table.
pub fn render(rows: &[Row]) -> String {
    let mut table = Table::new(vec!["pair".into(), "scheduler".into(), "efficiency".into()]);
    for r in rows {
        table.row(vec![
            format!("{} vs Throttle({})", r.app, r.throttle_size),
            r.scheduler.label().into(),
            format!("{:.2}", r.efficiency),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use neon_core::sched::SchedulerKind;
    use neon_sim::SimDuration;

    #[test]
    fn efficiency_projection_preserves_values() {
        let fig6_rows = vec![fig6::Row {
            app: "DCT",
            throttle_size: SimDuration::from_micros(19),
            scheduler: SchedulerKind::Direct,
            app_slowdown: 1.2,
            throttle_slowdown: 2.4,
            efficiency: 0.92,
        }];
        let rows = from_fig6(&fig6_rows);
        assert_eq!(rows.len(), 1);
        assert!((rows[0].efficiency - 0.92).abs() < 1e-12);
        assert!(render(&rows).contains("0.92"));
    }
}
