//! §3 throughput comparison: direct device access vs a stack that
//! traps to the kernel on every request.
//!
//! The paper compared an Nvidia stack (direct-mapped submission) with
//! an AMD stack (syscall per request) at matched request sizes, and
//! found direct access gains 8–35 % for 10–100 µs requests — and
//! 48–170 % when the per-request traps entail nontrivial driver work.
//! Here the "trapping stack" is modeled by a policy that keeps every
//! channel protected and admits every fault, with the fault cost set
//! to the syscall cost (plus, for the heavy variant, driver
//! processing).

use neon_core::cost::CostModel;
use neon_core::sched::{FaultDecision, Scheduler, SchedulerKind};
use neon_core::world::SchedCtx;
use neon_gpu::{ChannelId, CompletedRequest, TaskId};
use neon_metrics::Table;
use neon_sim::SimDuration;
use neon_workloads::throttle;

use crate::runner::{self, RunSpec};

/// A stack that traps on every submission and lets it through — the
/// syscall-per-request architecture of the comparison.
#[derive(Debug, Default)]
pub struct TrapPerRequest;

impl Scheduler for TrapPerRequest {
    fn name(&self) -> &'static str {
        "trap-per-request"
    }
    fn init(&mut self, _ctx: &mut SchedCtx<'_>) {}
    fn on_task_admitted(&mut self, ctx: &mut SchedCtx<'_>, task: TaskId) {
        ctx.protect_task(task);
    }
    fn on_task_exit(&mut self, _ctx: &mut SchedCtx<'_>, _task: TaskId) {}
    fn on_fault(
        &mut self,
        _ctx: &mut SchedCtx<'_>,
        _task: TaskId,
        _channel: ChannelId,
    ) -> FaultDecision {
        FaultDecision::Allow
    }
    fn on_poll(&mut self, _ctx: &mut SchedCtx<'_>) {}
    fn on_timer(&mut self, _ctx: &mut SchedCtx<'_>, _tag: u64) {}
    fn on_completion(&mut self, _ctx: &mut SchedCtx<'_>, _done: &CompletedRequest) {}
}

/// Configuration of the §3 comparison.
#[derive(Debug, Clone)]
pub struct Config {
    /// Horizon of each run.
    pub horizon: SimDuration,
    /// RNG seed.
    pub seed: u64,
    /// Request sizes (the paper's 10–100 µs plus larger points).
    pub sizes: Vec<SimDuration>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            horizon: runner::ALONE_HORIZON,
            seed: runner::DEFAULT_SEED,
            sizes: vec![
                SimDuration::from_micros(10),
                SimDuration::from_micros(20),
                SimDuration::from_micros(50),
                SimDuration::from_micros(100),
                SimDuration::from_micros(430),
            ],
        }
    }
}

/// Throughput gains of direct access at one request size.
#[derive(Debug, Clone)]
pub struct Row {
    /// Request size.
    pub size: SimDuration,
    /// Requests/second with direct access.
    pub direct_rate: f64,
    /// Requests/second with a syscall per request.
    pub syscall_rate: f64,
    /// Requests/second when each trap also runs driver routines.
    pub heavy_rate: f64,
}

impl Row {
    /// Direct access gain over the plain syscall stack.
    pub fn gain_over_syscall(&self) -> f64 {
        self.direct_rate / self.syscall_rate - 1.0
    }

    /// Direct access gain over the heavy (driver-processing) stack.
    pub fn gain_over_heavy(&self) -> f64 {
        self.direct_rate / self.heavy_rate - 1.0
    }
}

fn rate(spec: &RunSpec, size: SimDuration, horizon: SimDuration) -> f64 {
    let report = runner::run_alone(spec, Box::new(throttle::saturating(size).with_jitter(0.0)));
    report.tasks[0].completed_requests as f64 / horizon.as_secs_f64()
}

/// Runs the sweep.
pub fn run(cfg: &Config) -> Vec<Row> {
    let base_cost = CostModel::default();
    cfg.sizes
        .iter()
        .map(|&size| {
            let direct = RunSpec::new(SchedulerKind::Direct, cfg.horizon).with_seed(cfg.seed);
            let direct_rate = rate(&direct, size, cfg.horizon);

            // The syscall stack: every request traps at the syscall cost.
            let syscall_cost = CostModel {
                fault_intercept: base_cost.syscall_submit,
                ..base_cost.clone()
            };
            let syscall_rate = trap_rate(cfg, size, syscall_cost);

            // The heavy stack: the trap also runs driver routines.
            let heavy_cost = CostModel {
                fault_intercept: base_cost.syscall_submit + base_cost.driver_processing,
                ..base_cost.clone()
            };
            let heavy_rate = trap_rate(cfg, size, heavy_cost);

            Row {
                size,
                direct_rate,
                syscall_rate,
                heavy_rate,
            }
        })
        .collect()
}

fn trap_rate(cfg: &Config, size: SimDuration, cost: CostModel) -> f64 {
    let spec = RunSpec::new(SchedulerKind::Direct, cfg.horizon)
        .with_seed(cfg.seed)
        .with_cost(cost.clone());
    let config = neon_core::world::WorldConfig {
        cost,
        seed: cfg.seed,
        ..Default::default()
    };
    let mut world = neon_core::world::World::new(config, Box::new(TrapPerRequest));
    world
        .add_task(Box::new(throttle::saturating(size).with_jitter(0.0)))
        .expect("device has room");
    let report = world.run(spec.horizon);
    report.tasks[0].completed_requests as f64 / spec.horizon.as_secs_f64()
}

/// Renders the gains table.
pub fn render(rows: &[Row]) -> String {
    let mut table = Table::new(vec![
        "request size".into(),
        "direct req/s".into(),
        "syscall req/s".into(),
        "heavy req/s".into(),
        "gain vs syscall".into(),
        "gain vs heavy".into(),
    ]);
    for r in rows {
        table.row(vec![
            r.size.to_string(),
            format!("{:.0}", r.direct_rate),
            format!("{:.0}", r.syscall_rate),
            format!("{:.0}", r.heavy_rate),
            format!("{:+.0}%", r.gain_over_syscall() * 100.0),
            format!("{:+.0}%", r.gain_over_heavy() * 100.0),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_access_gains_match_paper_bands() {
        let cfg = Config {
            horizon: SimDuration::from_millis(200),
            sizes: vec![SimDuration::from_micros(10), SimDuration::from_micros(100)],
            ..Config::default()
        };
        let rows = run(&cfg);
        // 10µs requests: large gains (paper band up to 35% / 170%).
        assert!(
            rows[0].gain_over_syscall() > 0.15,
            "{}",
            rows[0].gain_over_syscall()
        );
        assert!(
            rows[0].gain_over_heavy() > 0.8,
            "{}",
            rows[0].gain_over_heavy()
        );
        // 100µs requests: small but positive gains.
        assert!(rows[1].gain_over_syscall() > 0.01);
        assert!(rows[1].gain_over_syscall() < rows[0].gain_over_syscall());
    }
}
