//! §3 throughput comparison: direct device access vs a stack that
//! traps to the kernel on every request.
//!
//! The paper compared an Nvidia stack (direct-mapped submission) with
//! an AMD stack (syscall per request) at matched request sizes, and
//! found direct access gains 8–35 % for 10–100 µs requests — and
//! 48–170 % when the per-request traps entail nontrivial driver work.
//! Here the "trapping stack" is modeled by a policy that keeps every
//! channel protected and admits every fault, with the fault cost set
//! to the syscall cost (plus, for the heavy variant, driver
//! processing).
//!
//! The (size × stack) matrix is embarrassingly parallel, so this
//! harness rides `neon-scenario`'s parallel sweep runner: the
//! trapping stacks install [`TrapPerRequest`] through the spec's
//! custom-scheduler hook and override the fault cost through its cost
//! model, one single-cell scenario per (size, stack) point, read back
//! in plan order. The results are identical to the old serial loop
//! (equivalence-tested below).

use neon_core::cost::{CostModel, SchedParams};
use neon_core::sched::{FaultDecision, Scheduler, SchedulerKind};
use neon_core::world::SchedCtx;
use neon_gpu::{ChannelId, CompletedRequest, TaskId};
use neon_metrics::Table;
use neon_scenario::{sweep, ScenarioSpec, TenantGroup, WorkloadSpec};
use neon_sim::SimDuration;

use crate::runner;

/// A stack that traps on every submission and lets it through — the
/// syscall-per-request architecture of the comparison.
#[derive(Debug, Default)]
pub struct TrapPerRequest;

impl Scheduler for TrapPerRequest {
    fn name(&self) -> &'static str {
        "trap-per-request"
    }
    fn init(&mut self, _ctx: &mut SchedCtx<'_>) {}
    fn on_task_admitted(&mut self, ctx: &mut SchedCtx<'_>, task: TaskId) {
        ctx.protect_task(task);
    }
    fn on_task_exit(&mut self, _ctx: &mut SchedCtx<'_>, _task: TaskId) {}
    fn on_fault(
        &mut self,
        _ctx: &mut SchedCtx<'_>,
        _task: TaskId,
        _channel: ChannelId,
    ) -> FaultDecision {
        FaultDecision::Allow
    }
    fn on_poll(&mut self, _ctx: &mut SchedCtx<'_>) {}
    fn on_timer(&mut self, _ctx: &mut SchedCtx<'_>, _tag: u64) {}
    fn on_completion(&mut self, _ctx: &mut SchedCtx<'_>, _done: &CompletedRequest) {}
}

/// Configuration of the §3 comparison.
#[derive(Debug, Clone)]
pub struct Config {
    /// Horizon of each run.
    pub horizon: SimDuration,
    /// RNG seed.
    pub seed: u64,
    /// Request sizes (the paper's 10–100 µs plus larger points).
    pub sizes: Vec<SimDuration>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            horizon: runner::ALONE_HORIZON,
            seed: runner::DEFAULT_SEED,
            sizes: vec![
                SimDuration::from_micros(10),
                SimDuration::from_micros(20),
                SimDuration::from_micros(50),
                SimDuration::from_micros(100),
                SimDuration::from_micros(430),
            ],
        }
    }
}

impl Config {
    /// The reduced configuration used by `sec3 --check` in CI.
    pub fn check() -> Self {
        Config {
            horizon: SimDuration::from_millis(200),
            sizes: vec![SimDuration::from_micros(10), SimDuration::from_micros(100)],
            ..Config::default()
        }
    }
}

/// Throughput gains of direct access at one request size.
#[derive(Debug, Clone)]
pub struct Row {
    /// Request size.
    pub size: SimDuration,
    /// Requests/second with direct access.
    pub direct_rate: f64,
    /// Requests/second with a syscall per request.
    pub syscall_rate: f64,
    /// Requests/second when each trap also runs driver routines.
    pub heavy_rate: f64,
}

impl Row {
    /// Direct access gain over the plain syscall stack.
    pub fn gain_over_syscall(&self) -> f64 {
        self.direct_rate / self.syscall_rate - 1.0
    }

    /// Direct access gain over the heavy (driver-processing) stack.
    pub fn gain_over_heavy(&self) -> f64 {
        self.direct_rate / self.heavy_rate - 1.0
    }
}

/// The custom-scheduler hook installing the trapping stack; the cost
/// of each trap comes from the scenario's cost-model override.
fn trap_stack(_params: SchedParams) -> Box<dyn Scheduler> {
    Box::new(TrapPerRequest)
}

/// The jitter-free saturating Throttle the comparison drives every
/// stack with (matched request sizes need matched submission times).
fn steady_throttle(size: SimDuration) -> TenantGroup {
    TenantGroup::new(
        format!("throttle-{size}"),
        WorkloadSpec::Throttle {
            request: size,
            off_ratio: 0.0,
            jitter: 0.0,
        },
    )
}

/// Runs the sweep through the parallel sweep runner: three
/// single-cell scenarios per request size (direct, syscall-per-
/// request, syscall plus driver processing), read back in plan order.
pub fn run(cfg: &Config) -> Vec<Row> {
    let base_cost = CostModel::default();
    // The syscall stack: every request traps at the syscall cost. The
    // heavy stack: the trap also runs driver routines.
    let syscall_cost = CostModel {
        fault_intercept: base_cost.syscall_submit,
        ..base_cost.clone()
    };
    let heavy_cost = CostModel {
        fault_intercept: base_cost.syscall_submit + base_cost.driver_processing,
        ..base_cost.clone()
    };
    let mut specs = Vec::new();
    for &size in &cfg.sizes {
        specs.push(
            ScenarioSpec::new(format!("direct:{size}"), cfg.horizon)
                .seeds(vec![cfg.seed])
                .schedulers(vec![SchedulerKind::Direct])
                .group(steady_throttle(size)),
        );
        for (stack, cost) in [("syscall", &syscall_cost), ("heavy", &heavy_cost)] {
            specs.push(
                ScenarioSpec::new(format!("{stack}:{size}"), cfg.horizon)
                    .seeds(vec![cfg.seed])
                    // The axis label is a carrier; the custom factory
                    // below decides what actually runs.
                    .schedulers(vec![SchedulerKind::Direct])
                    .custom_scheduler(trap_stack)
                    .cost(cost.clone())
                    .group(steady_throttle(size)),
            );
        }
    }
    let cells = sweep::plan(specs);
    let outcome = sweep::run_parallel(&cells, None);
    // Three cells per size, in push (= plan) order.
    cfg.sizes
        .iter()
        .enumerate()
        .map(|(i, &size)| {
            let rate = |k: usize| {
                let report = &outcome.results[i * 3 + k].report;
                report.tasks[0].completed_requests as f64 / cfg.horizon.as_secs_f64()
            };
            Row {
                size,
                direct_rate: rate(0),
                syscall_rate: rate(1),
                heavy_rate: rate(2),
            }
        })
        .collect()
}

/// Renders the gains table.
pub fn render(rows: &[Row]) -> String {
    let mut table = Table::new(vec![
        "request size".into(),
        "direct req/s".into(),
        "syscall req/s".into(),
        "heavy req/s".into(),
        "gain vs syscall".into(),
        "gain vs heavy".into(),
    ]);
    for r in rows {
        table.row(vec![
            r.size.to_string(),
            format!("{:.0}", r.direct_rate),
            format!("{:.0}", r.syscall_rate),
            format!("{:.0}", r.heavy_rate),
            format!("{:+.0}%", r.gain_over_syscall() * 100.0),
            format!("{:+.0}%", r.gain_over_heavy() * 100.0),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::RunSpec;
    use neon_workloads::throttle;

    /// The legacy serial reference: a hand-built world running
    /// [`TrapPerRequest`] at the given fault cost.
    fn serial_trap_rate(cfg: &Config, size: SimDuration, cost: CostModel) -> f64 {
        let config = neon_core::world::WorldConfig {
            cost,
            seed: cfg.seed,
            ..Default::default()
        };
        let mut world = neon_core::world::World::new(config, Box::new(TrapPerRequest));
        world
            .add_task(Box::new(throttle::saturating(size).with_jitter(0.0)))
            .expect("device has room");
        let report = world.run(cfg.horizon);
        report.tasks[0].completed_requests as f64 / cfg.horizon.as_secs_f64()
    }

    #[test]
    fn sweep_runner_port_matches_the_serial_path() {
        // The scenario-backed run() must reproduce the legacy serial
        // loop exactly: the custom-scheduler cells must build the
        // same world as the hand-constructed trapping stacks.
        let cfg = Config {
            horizon: SimDuration::from_millis(150),
            sizes: vec![SimDuration::from_micros(20), SimDuration::from_micros(100)],
            ..Config::default()
        };
        let base_cost = CostModel::default();
        let rows = run(&cfg);
        for (row, &size) in rows.iter().zip(&cfg.sizes) {
            let direct = RunSpec::new(SchedulerKind::Direct, cfg.horizon).with_seed(cfg.seed);
            let report = runner::run_alone(
                &direct,
                Box::new(throttle::saturating(size).with_jitter(0.0)),
            );
            let direct_rate = report.tasks[0].completed_requests as f64 / cfg.horizon.as_secs_f64();
            assert_eq!(row.direct_rate, direct_rate, "{size} direct");
            let syscall = CostModel {
                fault_intercept: base_cost.syscall_submit,
                ..base_cost.clone()
            };
            assert_eq!(
                row.syscall_rate,
                serial_trap_rate(&cfg, size, syscall),
                "{size} syscall"
            );
            let heavy = CostModel {
                fault_intercept: base_cost.syscall_submit + base_cost.driver_processing,
                ..base_cost.clone()
            };
            assert_eq!(
                row.heavy_rate,
                serial_trap_rate(&cfg, size, heavy),
                "{size} heavy"
            );
        }
    }

    #[test]
    fn direct_access_gains_match_paper_bands() {
        let cfg = Config {
            horizon: SimDuration::from_millis(200),
            sizes: vec![SimDuration::from_micros(10), SimDuration::from_micros(100)],
            ..Config::default()
        };
        let rows = run(&cfg);
        // 10µs requests: large gains (paper band up to 35% / 170%).
        assert!(
            rows[0].gain_over_syscall() > 0.15,
            "{}",
            rows[0].gain_over_syscall()
        );
        assert!(
            rows[0].gain_over_heavy() > 0.8,
            "{}",
            rows[0].gain_over_heavy()
        );
        // 100µs requests: small but positive gains.
        assert!(rows[1].gain_over_syscall() > 0.01);
        assert!(rows[1].gain_over_syscall() < rows[0].gain_over_syscall());
    }
}
