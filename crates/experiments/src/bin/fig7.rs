//! Regenerates Figure 7 (concurrency efficiency of the Figure 6 runs).

fn main() {
    let cfg = neon_experiments::fig7::Config::default();
    let rows = neon_experiments::fig7::run(&cfg);
    println!("{}", neon_experiments::fig7::render(&rows));
}
