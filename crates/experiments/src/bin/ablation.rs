//! Regenerates the paper's ablation artifact. See `neon_experiments::ablation`.

fn main() {
    let cfg = neon_experiments::ablation::Config::default();
    let rows = neon_experiments::ablation::run(&cfg);
    println!("{}", neon_experiments::ablation::render(&rows));
}
