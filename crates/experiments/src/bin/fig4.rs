//! Regenerates the paper's fig4 artifact. See `neon_experiments::fig4`.

fn main() {
    let cfg = neon_experiments::fig4::Config::default();
    let rows = neon_experiments::fig4::run(&cfg);
    println!("{}", neon_experiments::fig4::render(&rows));
}
