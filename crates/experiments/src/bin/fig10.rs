//! Regenerates Figure 10 (nonsaturating efficiency).

fn main() {
    let cfg = neon_experiments::fig10::Config::default();
    let rows = neon_experiments::fig10::run(&cfg);
    println!("{}", neon_experiments::fig10::render(&rows));
}
