//! Regenerates the paper's sec3 artifact. See `neon_experiments::sec3`.

fn main() {
    let cfg = neon_experiments::sec3::Config::default();
    let rows = neon_experiments::sec3::run(&cfg);
    println!("{}", neon_experiments::sec3::render(&rows));
}
