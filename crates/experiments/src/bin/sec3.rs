//! Regenerates the paper's §3 artifact (direct access vs trapping
//! stacks). See `neon_experiments::sec3`.
//!
//! `--check` runs the reduced CI configuration and verifies the
//! paper's bands: large gains for small requests, smaller but
//! positive gains for large ones.

use std::process::ExitCode;

use neon_experiments::sec3;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check = match args.as_slice() {
        [] => false,
        [flag] if flag == "--check" => true,
        _ => {
            eprintln!("sec3: usage: sec3 [--check]");
            return ExitCode::from(2);
        }
    };
    let cfg = if check {
        sec3::Config::check()
    } else {
        sec3::Config::default()
    };
    let rows = sec3::run(&cfg);
    println!("{}", sec3::render(&rows));
    if check {
        let [small, large] = rows.as_slice() else {
            eprintln!("sec3 --check: expected two sizes, got {}", rows.len());
            return ExitCode::FAILURE;
        };
        if small.gain_over_syscall() <= 0.15 || small.gain_over_heavy() <= 0.8 {
            eprintln!(
                "sec3 --check: small-request gains below the paper band \
(syscall {:+.0}%, heavy {:+.0}%)",
                small.gain_over_syscall() * 100.0,
                small.gain_over_heavy() * 100.0
            );
            return ExitCode::FAILURE;
        }
        if large.gain_over_syscall() <= 0.01
            || large.gain_over_syscall() >= small.gain_over_syscall()
        {
            eprintln!("sec3 --check: large-request gains must be small but positive");
            return ExitCode::FAILURE;
        }
        println!(
            "sec3 --check: ok ({:+.0}% / {:+.0}% at 10us)",
            small.gain_over_syscall() * 100.0,
            small.gain_over_heavy() * 100.0
        );
    }
    ExitCode::SUCCESS
}
