//! Regenerates the paper's fig8 artifact. See `neon_experiments::fig8`.

fn main() {
    let cfg = neon_experiments::fig8::Config::default();
    let rows = neon_experiments::fig8::run(&cfg);
    println!("{}", neon_experiments::fig8::render(&rows));
}
