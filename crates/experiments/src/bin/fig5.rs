//! Regenerates the paper's Figure 5 artifact (standalone policy
//! overhead across request sizes). See `neon_experiments::fig5`.
//!
//! `--check` runs the reduced CI configuration and verifies the
//! figure's shape: engaged Timeslice overhead is severe for small
//! requests and decays to negligible for large ones.

use std::process::ExitCode;

use neon_core::sched::SchedulerKind;
use neon_experiments::fig5;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check = match args.as_slice() {
        [] => false,
        [flag] if flag == "--check" => true,
        _ => {
            eprintln!("fig5: usage: fig5 [--check]");
            return ExitCode::from(2);
        }
    };
    let cfg = if check {
        fig5::Config::check()
    } else {
        fig5::Config::default()
    };
    let rows = fig5::run(&cfg);
    println!("{}", fig5::render(&rows));
    if check {
        let (Some(small), Some(large)) = (
            rows.first()
                .and_then(|r| r.slowdown(SchedulerKind::Timeslice)),
            rows.last()
                .and_then(|r| r.slowdown(SchedulerKind::Timeslice)),
        ) else {
            eprintln!("fig5 --check: missing Timeslice rows");
            return ExitCode::FAILURE;
        };
        if small <= 1.3 {
            eprintln!("fig5 --check: small requests must show overhead ({small:.2}x)");
            return ExitCode::FAILURE;
        }
        if large >= 1.05 {
            eprintln!("fig5 --check: large requests must not ({large:.2}x)");
            return ExitCode::FAILURE;
        }
        println!("fig5 --check: ok ({small:.2}x at 19us, {large:.2}x at 1.7ms)");
    }
    ExitCode::SUCCESS
}
