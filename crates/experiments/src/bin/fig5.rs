//! Regenerates the paper's fig5 artifact. See `neon_experiments::fig5`.

fn main() {
    let cfg = neon_experiments::fig5::Config::default();
    let rows = neon_experiments::fig5::run(&cfg);
    println!("{}", neon_experiments::fig5::render(&rows));
}
