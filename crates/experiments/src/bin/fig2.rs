//! Regenerates the paper's fig2 artifact. See `neon_experiments::fig2`.

fn main() {
    let cfg = neon_experiments::fig2::Config::default();
    let rows = neon_experiments::fig2::run(&cfg);
    println!("{}", neon_experiments::fig2::render(&rows));
}
