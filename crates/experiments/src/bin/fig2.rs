//! Regenerates the paper's Figure 2 artifact (request inter-arrival
//! and service CDFs). See `neon_experiments::fig2`.
//!
//! `--check` runs the reduced CI configuration and verifies the
//! paper's headline observation — short requests at short intervals —
//! holds for every application.

use std::process::ExitCode;

use neon_experiments::fig2;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check = match args.as_slice() {
        [] => false,
        [flag] if flag == "--check" => true,
        _ => {
            eprintln!("fig2: usage: fig2 [--check]");
            return ExitCode::from(2);
        }
    };
    let cfg = if check {
        fig2::Config::check()
    } else {
        fig2::Config::default()
    };
    let rows = fig2::run(&cfg);
    println!("{}", fig2::render(&rows));
    if check {
        if rows.len() != fig2::applications().len() {
            eprintln!("fig2 --check: expected one row per application");
            return ExitCode::FAILURE;
        }
        for r in &rows {
            if r.inter_arrival.total() < 100 {
                eprintln!("fig2 --check: {}: too few samples", r.name);
                return ExitCode::FAILURE;
            }
            if r.inter_arrival.cumulative_percent(3) <= 30.0 {
                eprintln!("fig2 --check: {}: inter-arrivals not short enough", r.name);
                return ExitCode::FAILURE;
            }
        }
        println!("fig2 --check: ok ({} applications)", rows.len());
    }
    ExitCode::SUCCESS
}
