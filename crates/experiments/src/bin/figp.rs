//! Regenerates Figure P: placement quality across symmetric and
//! heterogeneous multi-GPU topologies under churn.
//!
//! ```text
//! figp [--check] [--out FILE.json] [--csv FILE.csv]
//! ```
//!
//! `--check` runs the reduced CI configuration (short horizon, one
//! scheduler, full placement axis) and verifies the comparison covers
//! every placement policy on both topologies plus every rebalancing
//! policy on the heterogeneous one. `--out`/`--csv` write the
//! per-cell sweep results (with per-device columns) to files; the
//! aggregated comparison table always goes to stdout.

use std::process::ExitCode;

use neon_experiments::figp;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut check = false;
    let mut out = None;
    let mut csv = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--out" => match it.next() {
                Some(p) => out = Some(p.clone()),
                None => {
                    eprintln!("figp: --out needs a path");
                    return ExitCode::from(2);
                }
            },
            "--csv" => match it.next() {
                Some(p) => csv = Some(p.clone()),
                None => {
                    eprintln!("figp: --csv needs a path");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!(
                    "figp: unknown flag {other}; usage: figp [--check] [--out FILE] [--csv FILE]"
                );
                return ExitCode::from(2);
            }
        }
    }

    let cfg = if check {
        figp::Config::check()
    } else {
        figp::Config::default()
    };
    let fig = figp::run(&cfg);
    println!("== Figure P: placement quality, symmetric vs heterogeneous ==");
    println!("{}", figp::render(&fig.rows));

    if check {
        // Symmetric host: count-diff only; hetero host: the full
        // rebalancing axis.
        let expected = cfg.schedulers.len() * cfg.placements.len() * (1 + cfg.rebalances.len());
        if fig.rows.len() != expected {
            eprintln!(
                "figp --check: expected {expected} comparison rows, got {}",
                fig.rows.len()
            );
            return ExitCode::FAILURE;
        }
        if fig.rows.iter().any(|r| r.total_rounds == 0.0) {
            eprintln!("figp --check: a placement cell made no progress");
            return ExitCode::FAILURE;
        }
        for &rebalance in &cfg.rebalances {
            let covered = fig
                .rows
                .iter()
                .filter(|r| r.topology == "figP-hetero" && r.rebalance == rebalance)
                .count();
            if covered != cfg.schedulers.len() * cfg.placements.len() {
                eprintln!("figp --check: hetero host missing rebalance {rebalance} rows");
                return ExitCode::FAILURE;
            }
        }
        println!(
            "figp --check: ok ({} placements x {} rebalances x {} scheduler(s), {} cells)",
            cfg.placements.len(),
            cfg.rebalances.len(),
            cfg.schedulers.len(),
            fig.outcome.results.len()
        );
    }
    if let Some(path) = out {
        if let Err(e) = std::fs::write(&path, fig.to_json()) {
            eprintln!("figp: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("JSON written to {path}");
    }
    if let Some(path) = csv {
        if let Err(e) = std::fs::write(&path, fig.to_csv()) {
            eprintln!("figp: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("CSV written to {path}");
    }
    ExitCode::SUCCESS
}
