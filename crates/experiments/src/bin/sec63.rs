//! Regenerates the paper's §6.3 artifact (channel-exhaustion DoS and
//! the allocation policy). See `neon_experiments::sec63`.
//!
//! `--check` verifies the experiment's two sides: the unprotected
//! device is denied to the victim, and the policy contains the
//! attacker while still admitting the victim.

use std::process::ExitCode;

use neon_experiments::sec63;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check = match args.as_slice() {
        [] => false,
        [flag] if flag == "--check" => true,
        _ => {
            eprintln!("sec63: usage: sec63 [--check]");
            return ExitCode::from(2);
        }
    };
    let cfg = if check {
        sec63::Config::check()
    } else {
        sec63::Config::default()
    };
    let rows = sec63::run(&cfg);
    println!("{}", sec63::render(&rows));
    if check {
        let [unprotected, protected] = rows.as_slice() else {
            eprintln!("sec63 --check: expected two outcomes, got {}", rows.len());
            return ExitCode::FAILURE;
        };
        if unprotected.victim_admitted {
            eprintln!("sec63 --check: the unprotected device must be exhausted");
            return ExitCode::FAILURE;
        }
        if !protected.victim_admitted || protected.attacker_channels > cfg.per_task_limit {
            eprintln!("sec63 --check: the policy must contain the attacker");
            return ExitCode::FAILURE;
        }
        println!(
            "sec63 --check: ok (attacker held to {} channel(s), victim admitted)",
            protected.attacker_channels
        );
    }
    ExitCode::SUCCESS
}
