//! Regenerates the paper's sec63 artifact. See `neon_experiments::sec63`.

fn main() {
    let cfg = neon_experiments::sec63::Config::default();
    let rows = neon_experiments::sec63::run(&cfg);
    println!("{}", neon_experiments::sec63::render(&rows));
}
