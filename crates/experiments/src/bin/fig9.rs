//! Regenerates Figure 9 (nonsaturating fairness) and, since the runs
//! are shared, also prints Figure 10 (nonsaturating efficiency).

fn main() {
    let cfg = neon_experiments::fig9::Config::default();
    let rows = neon_experiments::fig9::run(&cfg);
    println!("== Figure 9: nonsaturating fairness ==");
    println!("{}", neon_experiments::fig9::render(&rows));
    let eff = neon_experiments::fig10::from_fig9(&rows);
    println!("== Figure 10: nonsaturating efficiency ==");
    println!("{}", neon_experiments::fig10::render(&eff));
}
