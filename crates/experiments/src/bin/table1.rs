//! Regenerates the paper's Table 1 artifact (per-application round
//! and request calibration). See `neon_experiments::table1`.
//!
//! `--check` runs the reduced CI configuration and verifies every
//! application model stays within the calibration tolerance of the
//! paper's published round times.

use std::process::ExitCode;

use neon_experiments::table1;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check = match args.as_slice() {
        [] => false,
        [flag] if flag == "--check" => true,
        _ => {
            eprintln!("table1: usage: table1 [--check]");
            return ExitCode::from(2);
        }
    };
    let cfg = if check {
        table1::Config::check()
    } else {
        table1::Config::default()
    };
    let rows = table1::run(&cfg);
    println!("{}", table1::render(&rows));
    if check {
        for r in &rows {
            if r.round_error() >= 0.15 {
                eprintln!(
                    "table1 --check: {}: measured {:.0}us vs paper {:.0}us",
                    r.name, r.measured_round_us, r.paper_round_us
                );
                return ExitCode::FAILURE;
            }
            if r.rounds <= 10 {
                eprintln!("table1 --check: {}: too few rounds", r.name);
                return ExitCode::FAILURE;
            }
        }
        println!(
            "table1 --check: ok ({} applications within 15%)",
            rows.len()
        );
    }
    ExitCode::SUCCESS
}
