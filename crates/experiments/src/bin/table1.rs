//! Regenerates the paper's table1 artifact. See `neon_experiments::table1`.

fn main() {
    let cfg = neon_experiments::table1::Config::default();
    let rows = neon_experiments::table1::run(&cfg);
    println!("{}", neon_experiments::table1::render(&rows));
}
