//! Regenerates Figure 6 (pairwise fairness) and, since the runs are
//! shared, also prints Figure 7 (concurrency efficiency).

fn main() {
    let cfg = neon_experiments::fig6::Config::default();
    let rows = neon_experiments::fig6::run(&cfg);
    println!("== Figure 6: normalized runtimes ==");
    println!("{}", neon_experiments::fig6::render(&rows));
    let eff = neon_experiments::fig7::from_fig6(&rows);
    println!("== Figure 7: concurrency efficiency ==");
    println!("{}", neon_experiments::fig7::render(&eff));
}
