//! Figure 4: standalone application slowdown under each scheduling
//! policy compared to direct device access.
//!
//! The engaged Timeslice scheduler pays the interception cost on every
//! request and hurts small-request applications badly (the paper
//! reports 38 % for BitonicSort, 30 % for FastWalshTransform, 40 % for
//! FloydWarshall); Disengaged Timeslice stays within ~2 % and
//! Disengaged Fair Queueing within ~5 %.
//!
//! This harness runs through `neon-scenario`'s parallel sweep runner:
//! each (application, scheduler) cell is an independent deterministic
//! `World`, fanned out across OS threads. Cells are built as static
//! (all-at-start, run-forever) scenarios, which take the classic
//! admission path — results are identical to the old serial loop.

use neon_core::sched::SchedulerKind;
use neon_metrics::Table;
use neon_scenario::{sweep, ScenarioSpec, TenantGroup, WorkloadSpec};
use neon_sim::SimDuration;
use neon_workloads::app::all_apps;

use crate::runner;

/// Configuration of the Figure 4 sweep.
#[derive(Debug, Clone)]
pub struct Config {
    /// Horizon of each standalone run.
    pub horizon: SimDuration,
    /// RNG seed.
    pub seed: u64,
    /// Schedulers to compare against direct access.
    pub schedulers: Vec<SchedulerKind>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            horizon: runner::ALONE_HORIZON,
            seed: runner::DEFAULT_SEED,
            schedulers: vec![
                SchedulerKind::Timeslice,
                SchedulerKind::DisengagedTimeslice,
                SchedulerKind::DisengagedFairQueueing,
            ],
        }
    }
}

/// One application's standalone slowdowns.
#[derive(Debug, Clone)]
pub struct Row {
    /// Application name.
    pub name: &'static str,
    /// Per-scheduler slowdown relative to direct access
    /// (1.0 = no overhead), ordered as in the config.
    pub slowdowns: Vec<(SchedulerKind, f64)>,
}

impl Row {
    /// Slowdown under a specific scheduler, if measured.
    pub fn slowdown(&self, kind: SchedulerKind) -> Option<f64> {
        self.slowdowns
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, s)| *s)
    }
}

/// Runs the full standalone sweep, in parallel (one cell per
/// application × scheduler, the direct-access baseline first).
pub fn run(cfg: &Config) -> Vec<Row> {
    let apps = all_apps();
    let mut schedulers = vec![SchedulerKind::Direct];
    schedulers.extend(cfg.schedulers.iter().copied());
    let specs: Vec<ScenarioSpec> = apps
        .iter()
        .map(|app| {
            ScenarioSpec::new(app.name, cfg.horizon)
                .seeds(vec![cfg.seed])
                .schedulers(schedulers.clone())
                .group(TenantGroup::new(
                    app.name,
                    WorkloadSpec::App {
                        name: app.name.to_string(),
                    },
                ))
        })
        .collect();
    let cells = sweep::plan(specs);
    let outcome = sweep::run_parallel(&cells, None);

    // Plan order is scenario-major, scheduler-minor with a single
    // seed: app i's cells occupy a contiguous block, baseline first.
    let per_app = schedulers.len();
    apps.iter()
        .enumerate()
        .map(|(i, app)| {
            let base = runner::mean_round(&outcome.results[i * per_app].report, 0);
            let slowdowns = cfg
                .schedulers
                .iter()
                .enumerate()
                .map(|(j, &kind)| {
                    let report = &outcome.results[i * per_app + 1 + j].report;
                    (kind, runner::mean_round(report, 0).ratio(base))
                })
                .collect();
            Row {
                name: app.name,
                slowdowns,
            }
        })
        .collect()
}

/// Renders slowdowns as percentage overhead per scheduler.
pub fn render(rows: &[Row]) -> String {
    let mut headers = vec!["Application".to_string()];
    if let Some(first) = rows.first() {
        for (kind, _) in &first.slowdowns {
            headers.push(format!("{} overhead", kind.label()));
        }
    }
    let mut table = Table::new(headers);
    for r in rows {
        let mut cells = vec![r.name.to_string()];
        for (_, s) in &r.slowdowns {
            cells.push(format!("{:+.1}%", (s - 1.0) * 100.0));
        }
        table.row(cells);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::RunSpec;

    #[test]
    fn sweep_runner_port_matches_the_serial_path() {
        // The scenario-backed run() must reproduce the legacy serial
        // computation exactly (static cells take the same admission
        // path and seed).
        let cfg = Config {
            horizon: SimDuration::from_millis(200),
            schedulers: vec![SchedulerKind::DisengagedTimeslice],
            ..Config::default()
        };
        let rows = run(&cfg);
        let row = rows
            .iter()
            .find(|r| r.name == "BinarySearch")
            .expect("BinarySearch in Table 1");
        let ported = row
            .slowdown(SchedulerKind::DisengagedTimeslice)
            .expect("measured");

        let app = neon_workloads::app::app_by_name("BinarySearch").unwrap();
        let direct = RunSpec::new(SchedulerKind::Direct, cfg.horizon).with_seed(cfg.seed);
        let base = runner::mean_round(&runner::run_alone(&direct, Box::new(app.build())), 0);
        let spec =
            RunSpec::new(SchedulerKind::DisengagedTimeslice, cfg.horizon).with_seed(cfg.seed);
        let round = runner::mean_round(&runner::run_alone(&spec, Box::new(app.build())), 0);
        let serial = round.ratio(base);
        assert_eq!(ported, serial, "ported {ported} vs serial {serial}");
    }

    #[test]
    fn disengaged_overheads_stay_low_for_a_sample_app() {
        let cfg = Config {
            horizon: SimDuration::from_millis(300),
            ..Config::default()
        };
        // Full sweep is covered by integration tests; keep the unit
        // test to one representative application for speed.
        let app = neon_workloads::app::app_by_name("FastWalshTransform").unwrap();
        let direct = RunSpec::new(SchedulerKind::Direct, cfg.horizon).with_seed(cfg.seed);
        let base = runner::mean_round(&runner::run_alone(&direct, Box::new(app.build())), 0);
        for (kind, bound) in [
            (SchedulerKind::Timeslice, 1.45),
            (SchedulerKind::DisengagedTimeslice, 1.06),
            (SchedulerKind::DisengagedFairQueueing, 1.09),
        ] {
            let spec = RunSpec::new(kind, cfg.horizon).with_seed(cfg.seed);
            let round = runner::mean_round(&runner::run_alone(&spec, Box::new(app.build())), 0);
            let slowdown = round.ratio(base);
            assert!(
                slowdown < bound,
                "{}: slowdown {slowdown:.3} above bound {bound}",
                kind.label()
            );
        }
    }
}
