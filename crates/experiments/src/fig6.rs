//! Figure 6: performance and fairness of concurrent executions.
//!
//! Four application-pair families (DCT, FFT, glxgears, oclParticles —
//! each vs Throttle at several request sizes) × four schedulers. The
//! reported number is each co-runner's runtime normalized to running
//! alone with direct device access. Direct access shows severe
//! unfairness in both directions; the paper's schedulers hold each
//! co-runner near 2×.
//!
//! The matrix is embarrassingly parallel, so this harness rides
//! `neon-scenario`'s sweep runner: standalone baselines and every
//! (app, size, scheduler) mix are independent deterministic cells
//! fanned out across OS threads. Mixes are static all-at-start
//! scenarios, which take the classic admission path — results are
//! identical to the old serial loop (equivalence-tested below).

use neon_core::cost::SchedParams;
use neon_core::sched::SchedulerKind;
use neon_core::workload::BoxedWorkload;
use neon_metrics::{fairness, Table};
use neon_scenario::{sweep, ScenarioSpec, TenantGroup, WorkloadSpec};
use neon_sim::SimDuration;
use neon_workloads::{app, throttle};

use crate::runner;

/// Configuration of the Figure 6 sweep.
#[derive(Debug, Clone)]
pub struct Config {
    /// Horizon of each concurrent run.
    pub horizon: SimDuration,
    /// RNG seed.
    pub seed: u64,
    /// Throttle request sizes (defaults to the paper's 19 µs – 1.7 ms).
    pub throttle_sizes: Vec<SimDuration>,
    /// Schedulers (defaults to the paper's four columns).
    pub schedulers: Vec<SchedulerKind>,
    /// Application families (defaults to the paper's four rows).
    pub apps: Vec<AppFamily>,
}

/// The application side of a Figure 6 pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppFamily {
    /// DCT vs Throttle (row 1).
    Dct,
    /// FFT vs Throttle (row 2).
    Fft,
    /// glxgears (OpenGL) vs Throttle (row 3).
    Glxgears,
    /// oclParticles (OpenGL + OpenCL) vs Throttle (row 4).
    OclParticles,
}

impl AppFamily {
    /// All four rows of the figure.
    pub const ALL: [AppFamily; 4] = [
        AppFamily::Dct,
        AppFamily::Fft,
        AppFamily::Glxgears,
        AppFamily::OclParticles,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            AppFamily::Dct => "DCT",
            AppFamily::Fft => "FFT",
            AppFamily::Glxgears => "glxgears",
            AppFamily::OclParticles => "oclParticles",
        }
    }

    /// Builds the workload.
    pub fn build(self) -> BoxedWorkload {
        match self {
            AppFamily::Dct => Box::new(app::dct()),
            AppFamily::Fft => Box::new(app::fft()),
            AppFamily::Glxgears => Box::new(app::glxgears_model()),
            AppFamily::OclParticles => Box::new(app::ocl_particles_model()),
        }
    }

    /// `true` for combined compute+graphics applications, which the
    /// paper samples with a larger request budget (96 vs 32).
    pub fn is_combined(self) -> bool {
        matches!(self, AppFamily::OclParticles)
    }
}

impl Default for Config {
    fn default() -> Self {
        Config {
            horizon: runner::MIX_HORIZON,
            seed: runner::DEFAULT_SEED,
            throttle_sizes: throttle::figure6_sizes(),
            schedulers: SchedulerKind::PAPER.to_vec(),
            apps: AppFamily::ALL.to_vec(),
        }
    }
}

/// One cell of the figure: an (app, throttle size, scheduler) triple.
#[derive(Debug, Clone)]
pub struct Row {
    /// Application family.
    pub app: &'static str,
    /// Throttle request size.
    pub throttle_size: SimDuration,
    /// Scheduler.
    pub scheduler: SchedulerKind,
    /// Application runtime normalized to running alone.
    pub app_slowdown: f64,
    /// Throttle runtime normalized to running alone.
    pub throttle_slowdown: f64,
    /// Concurrency efficiency of the run (consumed by Figure 7).
    pub efficiency: f64,
}

fn app_group(family: AppFamily) -> TenantGroup {
    TenantGroup::new(
        family.name(),
        WorkloadSpec::App {
            name: family.name().to_string(),
        },
    )
}

fn throttle_group(size: SimDuration) -> TenantGroup {
    TenantGroup::new(
        format!("throttle-{size}"),
        WorkloadSpec::Throttle {
            request: size,
            off_ratio: 0.0,
            // Throttle's constructor default; spelled out because the
            // scenario spec's default of 0.0 would diverge from the
            // serial harness this port must reproduce exactly.
            jitter: 0.02,
        },
    )
}

/// Runs the full sweep through the parallel sweep runner: one block of
/// standalone direct-access baselines, then one scenario per
/// (app, size) pair whose scheduler axis is the figure's columns.
pub fn run(cfg: &Config) -> Vec<Row> {
    let mut specs = Vec::new();
    // Standalone baselines, one single-cell scenario per distinct
    // workload (apps first, then throttle sizes).
    for &family in &cfg.apps {
        specs.push(
            ScenarioSpec::new(format!("alone:{}", family.name()), runner::ALONE_HORIZON)
                .seeds(vec![cfg.seed])
                .schedulers(vec![SchedulerKind::Direct])
                .group(app_group(family)),
        );
    }
    for &size in &cfg.throttle_sizes {
        specs.push(
            ScenarioSpec::new(format!("alone:throttle-{size}"), runner::ALONE_HORIZON)
                .seeds(vec![cfg.seed])
                .schedulers(vec![SchedulerKind::Direct])
                .group(throttle_group(size)),
        );
    }
    // The mixes: scenario-major over (app, size), scheduler-minor.
    for &family in &cfg.apps {
        for &size in &cfg.throttle_sizes {
            let mut spec = ScenarioSpec::new(format!("{}+{size}", family.name()), cfg.horizon)
                .seeds(vec![cfg.seed])
                .schedulers(cfg.schedulers.clone())
                .group(app_group(family))
                .group(throttle_group(size));
            if family.is_combined() {
                // Combined compute+graphics applications get the larger
                // sampling budget the paper uses (96 vs 32 requests).
                spec = spec.params(SchedParams {
                    sampling_requests: 96,
                    ..SchedParams::default()
                });
            }
            specs.push(spec);
        }
    }
    let cells = sweep::plan(specs);
    let outcome = sweep::run_parallel(&cells, None);

    // Baselines occupy the first |apps| + |sizes| cells, in push order.
    let app_alone = |i: usize| runner::mean_round(&outcome.results[i].report, 0);
    let throttle_alone =
        |j: usize| runner::mean_round(&outcome.results[cfg.apps.len() + j].report, 0);
    let mix_base = cfg.apps.len() + cfg.throttle_sizes.len();
    let per_pair = cfg.schedulers.len();

    let mut rows = Vec::new();
    for (i, &family) in cfg.apps.iter().enumerate() {
        for (j, &size) in cfg.throttle_sizes.iter().enumerate() {
            for (k, &scheduler) in cfg.schedulers.iter().enumerate() {
                let cell = mix_base + (i * cfg.throttle_sizes.len() + j) * per_pair + k;
                let report = &outcome.results[cell].report;
                // A starved co-runner (zero rounds) reads as an
                // infinite slowdown, as in the serial harness.
                let concurrent = |idx: usize| {
                    report.tasks[idx]
                        .mean_round(runner::WARMUP)
                        .unwrap_or(SimDuration::ZERO)
                };
                let pairs = [
                    (app_alone(i), concurrent(0)),
                    (throttle_alone(j), concurrent(1)),
                ];
                let norm = |(alone, conc): (SimDuration, SimDuration)| {
                    if conc.is_zero() {
                        f64::INFINITY
                    } else {
                        fairness::slowdown(alone, conc)
                    }
                };
                rows.push(Row {
                    app: family.name(),
                    throttle_size: size,
                    scheduler,
                    app_slowdown: norm(pairs[0]),
                    throttle_slowdown: norm(pairs[1]),
                    efficiency: fairness::concurrency_efficiency(&pairs),
                });
            }
        }
    }
    rows
}

/// Renders the normalized-runtime table.
pub fn render(rows: &[Row]) -> String {
    let mut table = Table::new(vec![
        "pair".into(),
        "scheduler".into(),
        "app slowdown".into(),
        "Throttle slowdown".into(),
    ]);
    for r in rows {
        table.row(vec![
            format!("{} vs Throttle({})", r.app, r.throttle_size),
            r.scheduler.label().into(),
            format!("{:.2}x", r.app_slowdown),
            format!("{:.2}x", r.throttle_slowdown),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pairwise::{self, PairwiseConfig};
    use neon_workloads::throttle;

    /// A reduced sweep used by the heavier assertions in
    /// `tests/figures.rs`; here we only sanity-check plumbing.
    #[test]
    fn single_cell_runs() {
        let cfg = Config {
            horizon: SimDuration::from_millis(400),
            throttle_sizes: vec![SimDuration::from_micros(430)],
            schedulers: vec![SchedulerKind::Direct],
            apps: vec![AppFamily::Dct],
            ..Config::default()
        };
        let rows = run(&cfg);
        assert_eq!(rows.len(), 1);
        // Direct access vs a large-request Throttle starves DCT.
        assert!(rows[0].app_slowdown > 3.0);
    }

    #[test]
    fn sweep_runner_port_matches_the_serial_pairwise_path() {
        // The scenario-backed run() must reproduce the legacy serial
        // pairwise computation exactly, including the oclParticles
        // sampling-budget override (static cells take the same
        // admission path and seed).
        let size = SimDuration::from_micros(430);
        let cfg = Config {
            horizon: SimDuration::from_millis(500),
            throttle_sizes: vec![size],
            schedulers: vec![SchedulerKind::DisengagedFairQueueing],
            apps: vec![AppFamily::Dct, AppFamily::OclParticles],
            ..Config::default()
        };
        let rows = run(&cfg);

        let mut cache = runner::AloneCache::new(runner::ALONE_HORIZON, cfg.seed);
        for (row, family) in rows.iter().zip(cfg.apps.iter()) {
            let params = family.is_combined().then(|| SchedParams {
                sampling_requests: 96,
                ..SchedParams::default()
            });
            let pair = PairwiseConfig {
                scheduler: SchedulerKind::DisengagedFairQueueing,
                workloads: vec![family.build(), Box::new(throttle::saturating(size))],
                horizon: cfg.horizon,
                seed: cfg.seed,
                cost: None,
                params,
            };
            let serial = pairwise::run_with_cache(&pair, &mut cache);
            assert_eq!(row.app_slowdown, serial.tasks[0].slowdown, "{}", row.app);
            assert_eq!(
                row.throttle_slowdown, serial.tasks[1].slowdown,
                "{}",
                row.app
            );
            assert_eq!(row.efficiency, serial.efficiency, "{}", row.app);
        }
    }
}
