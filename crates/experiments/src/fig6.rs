//! Figure 6: performance and fairness of concurrent executions.
//!
//! Four application-pair families (DCT, FFT, glxgears, oclParticles —
//! each vs Throttle at several request sizes) × four schedulers. The
//! reported number is each co-runner's runtime normalized to running
//! alone with direct device access. Direct access shows severe
//! unfairness in both directions; the paper's schedulers hold each
//! co-runner near 2×.

use neon_core::cost::SchedParams;
use neon_core::sched::SchedulerKind;
use neon_core::workload::BoxedWorkload;
use neon_metrics::Table;
use neon_sim::SimDuration;
use neon_workloads::{app, throttle};

use crate::pairwise::{self, PairwiseConfig};
use crate::runner;

/// Configuration of the Figure 6 sweep.
#[derive(Debug, Clone)]
pub struct Config {
    /// Horizon of each concurrent run.
    pub horizon: SimDuration,
    /// RNG seed.
    pub seed: u64,
    /// Throttle request sizes (defaults to the paper's 19 µs – 1.7 ms).
    pub throttle_sizes: Vec<SimDuration>,
    /// Schedulers (defaults to the paper's four columns).
    pub schedulers: Vec<SchedulerKind>,
    /// Application families (defaults to the paper's four rows).
    pub apps: Vec<AppFamily>,
}

/// The application side of a Figure 6 pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppFamily {
    /// DCT vs Throttle (row 1).
    Dct,
    /// FFT vs Throttle (row 2).
    Fft,
    /// glxgears (OpenGL) vs Throttle (row 3).
    Glxgears,
    /// oclParticles (OpenGL + OpenCL) vs Throttle (row 4).
    OclParticles,
}

impl AppFamily {
    /// All four rows of the figure.
    pub const ALL: [AppFamily; 4] = [
        AppFamily::Dct,
        AppFamily::Fft,
        AppFamily::Glxgears,
        AppFamily::OclParticles,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            AppFamily::Dct => "DCT",
            AppFamily::Fft => "FFT",
            AppFamily::Glxgears => "glxgears",
            AppFamily::OclParticles => "oclParticles",
        }
    }

    /// Builds the workload.
    pub fn build(self) -> BoxedWorkload {
        match self {
            AppFamily::Dct => Box::new(app::dct()),
            AppFamily::Fft => Box::new(app::fft()),
            AppFamily::Glxgears => Box::new(app::glxgears_model()),
            AppFamily::OclParticles => Box::new(app::ocl_particles_model()),
        }
    }

    /// `true` for combined compute+graphics applications, which the
    /// paper samples with a larger request budget (96 vs 32).
    pub fn is_combined(self) -> bool {
        matches!(self, AppFamily::OclParticles)
    }
}

impl Default for Config {
    fn default() -> Self {
        Config {
            horizon: runner::MIX_HORIZON,
            seed: runner::DEFAULT_SEED,
            throttle_sizes: throttle::figure6_sizes(),
            schedulers: SchedulerKind::PAPER.to_vec(),
            apps: AppFamily::ALL.to_vec(),
        }
    }
}

/// One cell of the figure: an (app, throttle size, scheduler) triple.
#[derive(Debug, Clone)]
pub struct Row {
    /// Application family.
    pub app: &'static str,
    /// Throttle request size.
    pub throttle_size: SimDuration,
    /// Scheduler.
    pub scheduler: SchedulerKind,
    /// Application runtime normalized to running alone.
    pub app_slowdown: f64,
    /// Throttle runtime normalized to running alone.
    pub throttle_slowdown: f64,
    /// Concurrency efficiency of the run (consumed by Figure 7).
    pub efficiency: f64,
}

/// Runs the full sweep.
pub fn run(cfg: &Config) -> Vec<Row> {
    let mut cache = runner::AloneCache::new(runner::ALONE_HORIZON, cfg.seed);
    let mut rows = Vec::new();
    for &family in &cfg.apps {
        for &size in &cfg.throttle_sizes {
            for &scheduler in &cfg.schedulers {
                // Combined compute+graphics applications get the larger
                // sampling budget the paper uses (96 vs 32 requests).
                let params = family.is_combined().then(|| SchedParams {
                    sampling_requests: 96,
                    ..SchedParams::default()
                });
                let pair = PairwiseConfig {
                    scheduler,
                    workloads: vec![family.build(), Box::new(throttle::saturating(size))],
                    horizon: cfg.horizon,
                    seed: cfg.seed,
                    cost: None,
                    params,
                };
                let result = pairwise::run_with_cache(&pair, &mut cache);
                rows.push(Row {
                    app: family.name(),
                    throttle_size: size,
                    scheduler,
                    app_slowdown: result.tasks[0].slowdown,
                    throttle_slowdown: result.tasks[1].slowdown,
                    efficiency: result.efficiency,
                });
            }
        }
    }
    rows
}

/// Renders the normalized-runtime table.
pub fn render(rows: &[Row]) -> String {
    let mut table = Table::new(vec![
        "pair".into(),
        "scheduler".into(),
        "app slowdown".into(),
        "Throttle slowdown".into(),
    ]);
    for r in rows {
        table.row(vec![
            format!("{} vs Throttle({})", r.app, r.throttle_size),
            r.scheduler.label().into(),
            format!("{:.2}x", r.app_slowdown),
            format!("{:.2}x", r.throttle_slowdown),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A reduced sweep used by the heavier assertions in
    /// `tests/figures.rs`; here we only sanity-check plumbing.
    #[test]
    fn single_cell_runs() {
        let cfg = Config {
            horizon: SimDuration::from_millis(400),
            throttle_sizes: vec![SimDuration::from_micros(430)],
            schedulers: vec![SchedulerKind::Direct],
            apps: vec![AppFamily::Dct],
            ..Config::default()
        };
        let rows = run(&cfg);
        assert_eq!(rows.len(), 1);
        // Direct access vs a large-request Throttle starves DCT.
        assert!(rows[0].app_slowdown > 3.0);
    }
}
