//! Table 1: per-application round and request times, standalone under
//! direct device access.
//!
//! The paper's Table 1 reports, for each benchmark, the run time of one
//! performance "round" and the average acceleration request size when
//! running alone. This harness replays each application model under
//! direct access and compares the measured values against the
//! published ones — it is the calibration check for the workload
//! models.
//!
//! Each application's standalone run is an independent deterministic
//! cell, so the harness rides `neon-scenario`'s parallel sweep
//! runner: one request-recording single-cell scenario per application,
//! read back in plan order. The results are identical to the old
//! serial loop (equivalence-tested below).

use neon_core::sched::SchedulerKind;
use neon_core::RunReport;
use neon_gpu::RequestKind;
use neon_metrics::{Summary, Table};
use neon_scenario::{sweep, ScenarioSpec, TenantGroup, WorkloadSpec};
use neon_sim::SimDuration;
use neon_workloads::app::{all_apps, AppSpec};

use crate::runner;

/// Configuration of the Table 1 harness.
#[derive(Debug, Clone)]
pub struct Config {
    /// Horizon of each standalone run.
    pub horizon: SimDuration,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            horizon: runner::ALONE_HORIZON,
            seed: runner::DEFAULT_SEED,
        }
    }
}

impl Config {
    /// The reduced configuration used by `table1 --check` in CI.
    pub fn check() -> Self {
        Config {
            horizon: SimDuration::from_millis(300),
            ..Config::default()
        }
    }
}

/// One application's measured-vs-paper comparison.
#[derive(Debug, Clone)]
pub struct Row {
    /// Application name.
    pub name: &'static str,
    /// Problem area.
    pub area: &'static str,
    /// Paper-reported µs per round.
    pub paper_round_us: f64,
    /// Measured µs per round.
    pub measured_round_us: f64,
    /// Paper-reported µs per request (compute; combined apps report
    /// the compute figure here as the paper lists both).
    pub paper_request_us: f64,
    /// Measured mean *main* compute-request service µs (trivial
    /// requests are never checked for completion and are excluded, as
    /// in the paper).
    pub measured_request_us: f64,
    /// Paper-reported µs per graphics request, for combined apps.
    pub paper_graphics_us: Option<f64>,
    /// Measured mean graphics-request service µs, for combined apps.
    pub measured_graphics_us: Option<f64>,
    /// Rounds measured.
    pub rounds: usize,
}

impl Row {
    /// Relative error of the measured round vs the paper's.
    pub fn round_error(&self) -> f64 {
        (self.measured_round_us - self.paper_round_us).abs() / self.paper_round_us
    }
}

/// Runs every Table 1 application standalone under direct access —
/// one request-recording cell per application, through the parallel
/// sweep runner.
pub fn run(cfg: &Config) -> Vec<Row> {
    let apps = all_apps();
    let specs: Vec<ScenarioSpec> = apps
        .iter()
        .map(|app| {
            ScenarioSpec::new(format!("alone:{}", app.name), cfg.horizon)
                .seeds(vec![cfg.seed])
                .schedulers(vec![SchedulerKind::Direct])
                .record_requests(true)
                .group(TenantGroup::new(
                    app.name,
                    WorkloadSpec::App {
                        name: app.name.to_string(),
                    },
                ))
        })
        .collect();
    let cells = sweep::plan(specs);
    let outcome = sweep::run_parallel(&cells, None);
    // One cell per application, in push (= plan) order.
    apps.iter()
        .zip(&outcome.results)
        .map(|(app, cell)| measure(app, &cell.report))
        .collect()
}

fn measure(app: &AppSpec, report: &RunReport) -> Row {
    let task = &report.tasks[0];
    let round = runner::mean_round(report, 0);
    // Exclude trivial (aux) requests, which the paper's measurement
    // cannot see: they are never checked for completion. Anything at or
    // below 2µs of service is the aux class. Combined applications
    // report compute and graphics separately, as the paper does.
    let by_kind = |kind: RequestKind| -> Vec<SimDuration> {
        task.service_times
            .iter()
            .zip(&task.service_kinds)
            .filter(|(s, k)| **s > SimDuration::from_micros(2) && **k == kind)
            .map(|(s, _)| *s)
            .collect()
    };
    let compute = Summary::of(&by_kind(RequestKind::Compute));
    let graphics = Summary::of(&by_kind(RequestKind::Graphics));
    // Graphics-only apps (glxgears) report their graphics mean in the
    // main request column, matching Table 1's single figure for them.
    let measured_request_us = if compute.is_empty() {
        graphics.mean().as_micros_f64()
    } else {
        compute.mean().as_micros_f64()
    };
    Row {
        name: app.name,
        area: app.area,
        paper_round_us: app.paper_round_us,
        measured_round_us: round.as_micros_f64(),
        paper_request_us: app.paper_request_us,
        measured_request_us,
        paper_graphics_us: if app.compute_per_round > 0 {
            app.paper_graphics_us
        } else {
            None
        },
        measured_graphics_us: if app.compute_per_round > 0 && !graphics.is_empty() {
            Some(graphics.mean().as_micros_f64())
        } else {
            None
        },
        rounds: task.rounds_completed(),
    }
}

/// Renders the comparison table.
pub fn render(rows: &[Row]) -> String {
    let mut table = Table::new(vec![
        "Application".into(),
        "Area".into(),
        "paper us/round".into(),
        "measured us/round".into(),
        "paper us/request".into(),
        "measured us/request".into(),
        "rounds".into(),
    ]);
    for r in rows {
        let paper_req = match r.paper_graphics_us {
            Some(g) => format!("{:.0}/{:.0}", r.paper_request_us, g),
            None => format!("{:.0}", r.paper_request_us),
        };
        let measured_req = match r.measured_graphics_us {
            Some(g) => format!("{:.0}/{:.0}", r.measured_request_us, g),
            None => format!("{:.0}", r.measured_request_us),
        };
        table.row(vec![
            r.name.into(),
            r.area.into(),
            format!("{:.0}", r.paper_round_us),
            format!("{:.0}", r.measured_round_us),
            paper_req,
            measured_req,
            r.rounds.to_string(),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::RunSpec;

    #[test]
    fn sweep_runner_port_matches_the_serial_path() {
        // The scenario-backed run() must reproduce the legacy serial
        // run_alone loop exactly: identical recorded request streams,
        // so every measured figure is bit-identical.
        let cfg = Config {
            horizon: SimDuration::from_millis(250),
            ..Config::default()
        };
        let rows = run(&cfg);
        for (row, app) in rows.iter().zip(all_apps().iter()) {
            let spec = RunSpec::new(SchedulerKind::Direct, cfg.horizon)
                .with_seed(cfg.seed)
                .recording();
            let report = runner::run_alone(&spec, Box::new(app.build()));
            let serial = measure(app, &report);
            assert_eq!(
                row.measured_round_us, serial.measured_round_us,
                "{}",
                app.name
            );
            assert_eq!(
                row.measured_request_us, serial.measured_request_us,
                "{}",
                app.name
            );
            assert_eq!(
                row.measured_graphics_us, serial.measured_graphics_us,
                "{}",
                app.name
            );
            assert_eq!(row.rounds, serial.rounds, "{}", app.name);
        }
    }

    #[test]
    fn measured_rounds_match_paper_within_tolerance() {
        let cfg = Config {
            horizon: SimDuration::from_millis(300),
            ..Config::default()
        };
        for row in run(&cfg) {
            assert!(
                row.round_error() < 0.15,
                "{}: measured {:.0}us vs paper {:.0}us",
                row.name,
                row.measured_round_us,
                row.paper_round_us
            );
            assert!(row.rounds > 10, "{}: too few rounds", row.name);
        }
    }
}
