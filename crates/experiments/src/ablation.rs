//! Ablation sweeps over the design's calibration constants and a
//! comparison against the engaged fair-share baselines.
//!
//! These do not correspond to a paper figure; they quantify the design
//! choices DESIGN.md calls out:
//!
//! - the free-run multiplier (longer disengagement = lower overhead,
//!   slower reaction to imbalance),
//! - the sampling request budget,
//! - the polling period,
//! - the interception cost (how fast must a trap be before engaged
//!   scheduling becomes competitive?),
//! - Disengaged Fair Queueing vs the engaged SFQ/DRR baselines.

use neon_core::cost::{CostModel, SchedParams};
use neon_core::sched::SchedulerKind;
use neon_metrics::Table;
use neon_sim::SimDuration;
use neon_workloads::{app, throttle};

use crate::pairwise::{self, PairwiseConfig};
use crate::runner::{self, RunSpec};

/// Configuration of the ablation suite.
#[derive(Debug, Clone)]
pub struct Config {
    /// Horizon of the concurrent runs.
    pub horizon: SimDuration,
    /// Horizon of the standalone-overhead runs.
    pub alone_horizon: SimDuration,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            horizon: SimDuration::from_millis(1_500),
            alone_horizon: runner::ALONE_HORIZON,
            seed: runner::DEFAULT_SEED,
        }
    }
}

/// One ablation data point.
#[derive(Debug, Clone)]
pub struct Row {
    /// Which knob (and value) this row varies.
    pub variant: String,
    /// Standalone overhead of a small-request Throttle (vs direct).
    pub standalone_overhead: f64,
    /// Fairness gap in the DCT-vs-Throttle(430 µs) mix: the larger
    /// slowdown divided by the smaller (1.0 = perfectly even).
    pub fairness_gap: f64,
    /// Concurrency efficiency of the mix.
    pub efficiency: f64,
}

fn measure(
    cfg: &Config,
    variant: String,
    scheduler: SchedulerKind,
    params: SchedParams,
    cost: CostModel,
) -> Row {
    // Standalone overhead: Throttle(50µs).
    let size = SimDuration::from_micros(50);
    let direct = RunSpec::new(SchedulerKind::Direct, cfg.alone_horizon)
        .with_seed(cfg.seed)
        .with_cost(cost.clone());
    let base = runner::mean_round(
        &runner::run_alone(&direct, Box::new(throttle::saturating(size))),
        0,
    );
    let spec = RunSpec::new(scheduler, cfg.alone_horizon)
        .with_seed(cfg.seed)
        .with_cost(cost.clone())
        .with_params(params.clone());
    let round = runner::mean_round(
        &runner::run_alone(&spec, Box::new(throttle::saturating(size))),
        0,
    );
    let standalone_overhead = round.ratio(base) - 1.0;

    // Fairness + efficiency: DCT vs Throttle(430µs).
    let mix = PairwiseConfig {
        scheduler,
        workloads: vec![
            Box::new(app::dct()),
            Box::new(throttle::saturating(SimDuration::from_micros(430))),
        ],
        horizon: cfg.horizon,
        seed: cfg.seed,
        cost: Some(cost.clone()),
        params: Some(params.clone()),
    };
    // Note: baselines must use the same cost model; build a bespoke
    // cache per variant.
    let mut cache = runner::AloneCache::new(cfg.alone_horizon, cfg.seed);
    let result = pairwise::run_with_cache(&mix, &mut cache);
    let (a, b) = (result.tasks[0].slowdown, result.tasks[1].slowdown);
    Row {
        variant,
        standalone_overhead,
        fairness_gap: if a >= b { a / b } else { b / a },
        efficiency: result.efficiency,
    }
}

/// Runs the full ablation suite.
pub fn run(cfg: &Config) -> Vec<Row> {
    let mut rows = Vec::new();
    let dfq = SchedulerKind::DisengagedFairQueueing;

    // Free-run multiplier.
    for mult in [2u32, 5, 10] {
        let params = SchedParams {
            freerun_multiplier: mult,
            ..SchedParams::default()
        };
        rows.push(measure(
            cfg,
            format!("freerun-multiplier={mult}"),
            dfq,
            params,
            CostModel::default(),
        ));
    }

    // Sampling request budget.
    for reqs in [8u64, 32, 128] {
        let params = SchedParams {
            sampling_requests: reqs,
            ..SchedParams::default()
        };
        rows.push(measure(
            cfg,
            format!("sampling-requests={reqs}"),
            dfq,
            params,
            CostModel::default(),
        ));
    }

    // Polling period.
    for us in [250u64, 1_000, 4_000] {
        let cost = CostModel {
            polling_period: SimDuration::from_micros(us),
            ..CostModel::default()
        };
        rows.push(measure(
            cfg,
            format!("polling-period={us}us"),
            dfq,
            SchedParams::default(),
            cost,
        ));
    }

    // Interception cost (applies to the engaged Timeslice).
    for us in [3u64, 12, 24] {
        let cost = CostModel {
            fault_intercept: SimDuration::from_micros(us),
            ..CostModel::default()
        };
        rows.push(measure(
            cfg,
            format!("trap-cost={us}us (engaged-ts)"),
            SchedulerKind::Timeslice,
            SchedParams::default(),
            cost,
        ));
    }

    // Scheduler family comparison at defaults, including the §6.1
    // vendor-statistics future-work mode.
    for kind in [
        SchedulerKind::DisengagedFairQueueing,
        SchedulerKind::DisengagedFairQueueingVendor,
        SchedulerKind::DisengagedTimeslice,
        SchedulerKind::Timeslice,
        SchedulerKind::EngagedSfq,
        SchedulerKind::EngagedDrr,
    ] {
        rows.push(measure(
            cfg,
            format!("scheduler={}", kind.label()),
            kind,
            SchedParams::default(),
            CostModel::default(),
        ));
    }
    rows
}

/// Renders the suite.
pub fn render(rows: &[Row]) -> String {
    let mut table = Table::new(vec![
        "variant".into(),
        "standalone overhead".into(),
        "fairness gap".into(),
        "efficiency".into(),
    ]);
    for r in rows {
        table.row(vec![
            r.variant.clone(),
            format!("{:+.1}%", r.standalone_overhead * 100.0),
            format!("{:.2}", r.fairness_gap),
            format!("{:.2}", r.efficiency),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn longer_freeruns_cost_less_overhead() {
        let cfg = Config {
            horizon: SimDuration::from_millis(600),
            alone_horizon: SimDuration::from_millis(300),
            ..Config::default()
        };
        let short = measure(
            &cfg,
            "m=2".into(),
            SchedulerKind::DisengagedFairQueueing,
            SchedParams {
                freerun_multiplier: 2,
                ..SchedParams::default()
            },
            CostModel::default(),
        );
        let long = measure(
            &cfg,
            "m=10".into(),
            SchedulerKind::DisengagedFairQueueing,
            SchedParams {
                freerun_multiplier: 10,
                ..SchedParams::default()
            },
            CostModel::default(),
        );
        assert!(
            long.standalone_overhead <= short.standalone_overhead + 0.01,
            "long {:.3} vs short {:.3}",
            long.standalone_overhead,
            short.standalone_overhead
        );
    }
}
