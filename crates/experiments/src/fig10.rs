//! Figure 10: efficiency of concurrent executions for nonsaturating
//! workloads.
//!
//! The efficiency projection of the Figure 9 sweep, including the
//! direct-access column. At an 80 % Throttle off ratio the paper
//! reports losses relative to direct access of 36 % (Timeslice), 34 %
//! (Disengaged Timeslice) and essentially 0 % (Disengaged Fair
//! Queueing).
//!
//! The runs are shared with Figure 9, which rides `neon-scenario`'s
//! parallel sweep runner — so this projection is parallel (and
//! serial-equivalence-tested) by construction.

use neon_core::sched::SchedulerKind;
use neon_metrics::Table;

use crate::fig9;

/// Configuration: identical to Figure 9's (the runs are shared).
pub type Config = fig9::Config;

/// One efficiency cell.
#[derive(Debug, Clone)]
pub struct Row {
    /// Throttle's off ratio.
    pub off_ratio: f64,
    /// Scheduler.
    pub scheduler: SchedulerKind,
    /// Concurrency efficiency.
    pub efficiency: f64,
    /// Loss relative to direct access at the same off ratio (present
    /// when the sweep includes the direct column).
    pub loss_vs_direct: Option<f64>,
}

/// Runs the Figure 9 sweep and projects efficiencies.
pub fn run(cfg: &Config) -> Vec<Row> {
    from_fig9(&fig9::run(cfg))
}

/// Projects efficiency rows out of Figure 9 rows.
pub fn from_fig9(rows: &[fig9::Row]) -> Vec<Row> {
    rows.iter()
        .map(|r| {
            let direct = rows
                .iter()
                .find(|d| {
                    d.scheduler == SchedulerKind::Direct && (d.off_ratio - r.off_ratio).abs() < 1e-9
                })
                .map(|d| d.efficiency);
            let loss_vs_direct = direct.map(|d| {
                if d <= 0.0 {
                    0.0
                } else {
                    ((d - r.efficiency) / d).max(0.0)
                }
            });
            Row {
                off_ratio: r.off_ratio,
                scheduler: r.scheduler,
                efficiency: r.efficiency,
                loss_vs_direct,
            }
        })
        .collect()
}

/// Renders the efficiency table.
pub fn render(rows: &[Row]) -> String {
    let mut table = Table::new(vec![
        "off ratio".into(),
        "scheduler".into(),
        "efficiency".into(),
        "loss vs direct".into(),
    ]);
    for r in rows {
        table.row(vec![
            format!("{:.0}%", r.off_ratio * 100.0),
            r.scheduler.label().into(),
            format!("{:.2}", r.efficiency),
            r.loss_vs_direct
                .map(|l| format!("{:.0}%", l * 100.0))
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_projection_is_relative_to_direct() {
        let fig9_rows = vec![
            fig9::Row {
                off_ratio: 0.8,
                scheduler: SchedulerKind::Direct,
                dct_slowdown: 1.2,
                throttle_slowdown: 1.0,
                efficiency: 1.8,
            },
            fig9::Row {
                off_ratio: 0.8,
                scheduler: SchedulerKind::Timeslice,
                dct_slowdown: 2.4,
                throttle_slowdown: 2.0,
                efficiency: 0.9,
            },
        ];
        let rows = from_fig9(&fig9_rows);
        let ts = rows
            .iter()
            .find(|r| r.scheduler == SchedulerKind::Timeslice)
            .unwrap();
        assert!((ts.loss_vs_direct.unwrap() - 0.5).abs() < 1e-9);
        let direct = rows
            .iter()
            .find(|r| r.scheduler == SchedulerKind::Direct)
            .unwrap();
        assert_eq!(direct.loss_vs_direct, Some(0.0));
    }
}
