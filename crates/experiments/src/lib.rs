//! # neon-experiments
//!
//! One harness per table/figure of the paper's evaluation (§5), plus
//! the §3 throughput comparison, the §6.3 channel-DoS experiment, and
//! ablation sweeps over the design's calibration constants.
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`table1`] | Table 1 — per-app round and request times |
//! | [`fig2`] | Figure 2 — request inter-arrival / service CDFs |
//! | [`sec3`] | §3 — direct vs trap-per-request throughput |
//! | [`fig4`] | Figure 4 — standalone slowdown per scheduler |
//! | [`fig5`] | Figure 5 — standalone Throttle slowdown vs request size |
//! | [`fig6`] | Figure 6 — pairwise fairness (normalized runtimes) |
//! | [`fig7`] | Figure 7 — concurrency efficiency of the Figure 6 runs |
//! | [`fig8`] | Figure 8 — four-way fairness and efficiency |
//! | [`fig9`] | Figure 9 — nonsaturating fairness |
//! | [`fig10`] | Figure 10 — nonsaturating efficiency |
//! | [`sec63`] | §6.3 — channel/context exhaustion DoS and the C/D policy |
//! | [`figp`] | Figure P (beyond the paper) — placement quality on symmetric vs heterogeneous multi-GPU topologies |
//! | [`ablation`] | design-choice sweeps (free-run multiplier, sampling budget, trap cost, polling period) |
//!
//! Each module exposes `run(&Config) -> Vec<Row>` (pure data) and a
//! `render` function producing the table printed by the corresponding
//! binary in `src/bin/`.

pub mod ablation;
pub mod fig10;
pub mod fig2;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod figp;
pub mod pairwise;
pub mod runner;
pub mod sec3;
pub mod sec63;
pub mod table1;
