//! Figure 9: performance and fairness for nonsaturating workloads.
//!
//! DCT runs against a Throttle that sleeps a configurable share of its
//! standalone execution ("off" ratio 0–80 %). Under the (non
//! work-conserving) timeslice schedulers the idle share of Throttle's
//! slices is wasted; under Disengaged Fair Queueing Throttle barely
//! suffers while DCT soaks up the idle capacity — "fairness does not
//! necessarily require co-runners to suffer equally".

use neon_core::sched::SchedulerKind;
use neon_metrics::Table;
use neon_sim::SimDuration;
use neon_workloads::{app, throttle};

use crate::pairwise::{self, PairwiseConfig};
use crate::runner;

/// Configuration of the Figure 9/10 sweep.
#[derive(Debug, Clone)]
pub struct Config {
    /// Horizon of each run.
    pub horizon: SimDuration,
    /// RNG seed.
    pub seed: u64,
    /// Throttle request size.
    pub throttle_size: SimDuration,
    /// Off ratios to sweep.
    pub off_ratios: Vec<f64>,
    /// Schedulers to compare.
    pub schedulers: Vec<SchedulerKind>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            horizon: runner::MIX_HORIZON,
            seed: runner::DEFAULT_SEED,
            throttle_size: SimDuration::from_micros(430),
            off_ratios: vec![0.0, 0.2, 0.4, 0.6, 0.8],
            schedulers: SchedulerKind::PAPER.to_vec(),
        }
    }
}

/// One (off ratio, scheduler) cell.
#[derive(Debug, Clone)]
pub struct Row {
    /// Throttle's off ratio.
    pub off_ratio: f64,
    /// Scheduler.
    pub scheduler: SchedulerKind,
    /// DCT slowdown vs running alone.
    pub dct_slowdown: f64,
    /// Throttle slowdown vs running alone.
    pub throttle_slowdown: f64,
    /// Concurrency efficiency (consumed by Figure 10).
    pub efficiency: f64,
}

/// Runs the sweep.
pub fn run(cfg: &Config) -> Vec<Row> {
    let mut cache = runner::AloneCache::new(runner::ALONE_HORIZON, cfg.seed);
    let mut rows = Vec::new();
    for &off in &cfg.off_ratios {
        for &scheduler in &cfg.schedulers {
            let pair = PairwiseConfig {
                scheduler,
                workloads: vec![
                    Box::new(app::dct()),
                    Box::new(throttle::nonsaturating(cfg.throttle_size, off)),
                ],
                horizon: cfg.horizon,
                seed: cfg.seed,
                cost: None,
                params: None,
            };
            let result = pairwise::run_with_cache(&pair, &mut cache);
            rows.push(Row {
                off_ratio: off,
                scheduler,
                dct_slowdown: result.tasks[0].slowdown,
                throttle_slowdown: result.tasks[1].slowdown,
                efficiency: result.efficiency,
            });
        }
    }
    rows
}

/// Renders the fairness table.
pub fn render(rows: &[Row]) -> String {
    let mut table = Table::new(vec![
        "off ratio".into(),
        "scheduler".into(),
        "DCT slowdown".into(),
        "Throttle slowdown".into(),
    ]);
    for r in rows {
        table.row(vec![
            format!("{:.0}%", r.off_ratio * 100.0),
            r.scheduler.label().into(),
            format!("{:.2}x", r.dct_slowdown),
            format!("{:.2}x", r.throttle_slowdown),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dfq_lets_dct_exploit_throttle_idleness() {
        let cfg = Config {
            horizon: SimDuration::from_millis(800),
            off_ratios: vec![0.8],
            schedulers: vec![
                SchedulerKind::DisengagedTimeslice,
                SchedulerKind::DisengagedFairQueueing,
            ],
            ..Config::default()
        };
        let rows = run(&cfg);
        let ts = &rows[0];
        let dfq = &rows[1];
        // Timeslice wastes Throttle's idle slices: DCT pays ~2x. DFQ is
        // (nearly) work conserving: DCT does clearly better, and
        // Throttle is barely slowed.
        assert!(ts.dct_slowdown > 1.8, "ts: {:.2}", ts.dct_slowdown);
        assert!(
            dfq.dct_slowdown < ts.dct_slowdown - 0.3,
            "dfq {:.2} vs ts {:.2}",
            dfq.dct_slowdown,
            ts.dct_slowdown
        );
        assert!(
            dfq.throttle_slowdown < 1.6,
            "throttle should barely suffer: {:.2}",
            dfq.throttle_slowdown
        );
    }
}
