//! Figure 9: performance and fairness for nonsaturating workloads.
//!
//! DCT runs against a Throttle that sleeps a configurable share of its
//! standalone execution ("off" ratio 0–80 %). Under the (non
//! work-conserving) timeslice schedulers the idle share of Throttle's
//! slices is wasted; under Disengaged Fair Queueing Throttle barely
//! suffers while DCT soaks up the idle capacity — "fairness does not
//! necessarily require co-runners to suffer equally".
//!
//! This harness rides `neon-scenario`'s parallel sweep runner: the
//! standalone baselines (DCT, plus one Throttle per off ratio) and
//! every (off ratio, scheduler) mix are independent deterministic
//! cells fanned out across OS threads. Mixes are static all-at-start
//! scenarios, which take the classic admission path — results are
//! identical to the old serial pairwise loop (equivalence-tested
//! below).

use neon_core::sched::SchedulerKind;
use neon_metrics::{fairness, Table};
use neon_scenario::{sweep, ScenarioSpec, TenantGroup, WorkloadSpec};
use neon_sim::SimDuration;

use crate::runner;

/// Configuration of the Figure 9/10 sweep.
#[derive(Debug, Clone)]
pub struct Config {
    /// Horizon of each run.
    pub horizon: SimDuration,
    /// RNG seed.
    pub seed: u64,
    /// Throttle request size.
    pub throttle_size: SimDuration,
    /// Off ratios to sweep.
    pub off_ratios: Vec<f64>,
    /// Schedulers to compare.
    pub schedulers: Vec<SchedulerKind>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            horizon: runner::MIX_HORIZON,
            seed: runner::DEFAULT_SEED,
            throttle_size: SimDuration::from_micros(430),
            off_ratios: vec![0.0, 0.2, 0.4, 0.6, 0.8],
            schedulers: SchedulerKind::PAPER.to_vec(),
        }
    }
}

/// One (off ratio, scheduler) cell.
#[derive(Debug, Clone)]
pub struct Row {
    /// Throttle's off ratio.
    pub off_ratio: f64,
    /// Scheduler.
    pub scheduler: SchedulerKind,
    /// DCT slowdown vs running alone.
    pub dct_slowdown: f64,
    /// Throttle slowdown vs running alone.
    pub throttle_slowdown: f64,
    /// Concurrency efficiency (consumed by Figure 10).
    pub efficiency: f64,
}

fn dct_group() -> TenantGroup {
    TenantGroup::new(
        "DCT",
        WorkloadSpec::App {
            name: "DCT".to_string(),
        },
    )
}

fn throttle_group(size: SimDuration, off: f64) -> TenantGroup {
    TenantGroup::new(
        format!("throttle-{size}-off{off}"),
        WorkloadSpec::Throttle {
            request: size,
            off_ratio: off,
            // Throttle's constructor default; spelled out because the
            // scenario spec's default of 0.0 would diverge from the
            // serial harness this port must reproduce exactly.
            jitter: 0.02,
        },
    )
}

/// Runs the sweep through the parallel sweep runner: one block of
/// standalone direct-access baselines (DCT, then one Throttle per off
/// ratio), then one scenario per off ratio whose scheduler axis is the
/// figure's columns.
pub fn run(cfg: &Config) -> Vec<Row> {
    let mut specs = vec![ScenarioSpec::new("alone:DCT", runner::ALONE_HORIZON)
        .seeds(vec![cfg.seed])
        .schedulers(vec![SchedulerKind::Direct])
        .group(dct_group())];
    for &off in &cfg.off_ratios {
        specs.push(
            ScenarioSpec::new(format!("alone:throttle-off{off}"), runner::ALONE_HORIZON)
                .seeds(vec![cfg.seed])
                .schedulers(vec![SchedulerKind::Direct])
                .group(throttle_group(cfg.throttle_size, off)),
        );
    }
    for &off in &cfg.off_ratios {
        specs.push(
            ScenarioSpec::new(format!("DCT+off{off}"), cfg.horizon)
                .seeds(vec![cfg.seed])
                .schedulers(cfg.schedulers.clone())
                .group(dct_group())
                .group(throttle_group(cfg.throttle_size, off)),
        );
    }
    let cells = sweep::plan(specs);
    let outcome = sweep::run_parallel(&cells, None);

    // Baselines occupy the first 1 + |off_ratios| cells, in push order.
    let dct_alone = runner::mean_round(&outcome.results[0].report, 0);
    let throttle_alone = |j: usize| runner::mean_round(&outcome.results[1 + j].report, 0);
    let mix_base = 1 + cfg.off_ratios.len();
    let per_mix = cfg.schedulers.len();

    let mut rows = Vec::new();
    for (j, &off) in cfg.off_ratios.iter().enumerate() {
        for (k, &scheduler) in cfg.schedulers.iter().enumerate() {
            let report = &outcome.results[mix_base + j * per_mix + k].report;
            // A starved co-runner (zero rounds) reads as an infinite
            // slowdown, as in the serial harness.
            let concurrent = |idx: usize| {
                report.tasks[idx]
                    .mean_round(runner::WARMUP)
                    .unwrap_or(SimDuration::ZERO)
            };
            let pairs = [
                (dct_alone, concurrent(0)),
                (throttle_alone(j), concurrent(1)),
            ];
            let norm = |(alone, conc): (SimDuration, SimDuration)| {
                if conc.is_zero() {
                    f64::INFINITY
                } else {
                    fairness::slowdown(alone, conc)
                }
            };
            rows.push(Row {
                off_ratio: off,
                scheduler,
                dct_slowdown: norm(pairs[0]),
                throttle_slowdown: norm(pairs[1]),
                efficiency: fairness::concurrency_efficiency(&pairs),
            });
        }
    }
    rows
}

/// Renders the fairness table.
pub fn render(rows: &[Row]) -> String {
    let mut table = Table::new(vec![
        "off ratio".into(),
        "scheduler".into(),
        "DCT slowdown".into(),
        "Throttle slowdown".into(),
    ]);
    for r in rows {
        table.row(vec![
            format!("{:.0}%", r.off_ratio * 100.0),
            r.scheduler.label().into(),
            format!("{:.2}x", r.dct_slowdown),
            format!("{:.2}x", r.throttle_slowdown),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pairwise::{self, PairwiseConfig};
    use neon_workloads::{app, throttle};

    #[test]
    fn dfq_lets_dct_exploit_throttle_idleness() {
        let cfg = Config {
            horizon: SimDuration::from_millis(800),
            off_ratios: vec![0.8],
            schedulers: vec![
                SchedulerKind::DisengagedTimeslice,
                SchedulerKind::DisengagedFairQueueing,
            ],
            ..Config::default()
        };
        let rows = run(&cfg);
        let ts = &rows[0];
        let dfq = &rows[1];
        // Timeslice wastes Throttle's idle slices: DCT pays ~2x. DFQ is
        // (nearly) work conserving: DCT does clearly better, and
        // Throttle is barely slowed.
        assert!(ts.dct_slowdown > 1.8, "ts: {:.2}", ts.dct_slowdown);
        assert!(
            dfq.dct_slowdown < ts.dct_slowdown - 0.3,
            "dfq {:.2} vs ts {:.2}",
            dfq.dct_slowdown,
            ts.dct_slowdown
        );
        assert!(
            dfq.throttle_slowdown < 1.6,
            "throttle should barely suffer: {:.2}",
            dfq.throttle_slowdown
        );
    }

    #[test]
    fn sweep_runner_port_matches_the_serial_pairwise_path() {
        // The scenario-backed run() must reproduce the legacy serial
        // pairwise computation exactly (static cells take the same
        // admission path and seed).
        let cfg = Config {
            horizon: SimDuration::from_millis(600),
            off_ratios: vec![0.0, 0.6],
            schedulers: vec![SchedulerKind::DisengagedFairQueueing],
            ..Config::default()
        };
        let rows = run(&cfg);

        let mut cache = runner::AloneCache::new(runner::ALONE_HORIZON, cfg.seed);
        for (row, &off) in rows.iter().zip(cfg.off_ratios.iter()) {
            let pair = PairwiseConfig {
                scheduler: SchedulerKind::DisengagedFairQueueing,
                workloads: vec![
                    Box::new(app::dct()),
                    Box::new(throttle::nonsaturating(cfg.throttle_size, off)),
                ],
                horizon: cfg.horizon,
                seed: cfg.seed,
                cost: None,
                params: None,
            };
            let serial = pairwise::run_with_cache(&pair, &mut cache);
            assert_eq!(
                row.dct_slowdown, serial.tasks[0].slowdown,
                "off {off}: DCT diverged from the serial path"
            );
            assert_eq!(
                row.throttle_slowdown, serial.tasks[1].slowdown,
                "off {off}: Throttle diverged from the serial path"
            );
            assert_eq!(row.efficiency, serial.efficiency, "off {off}");
        }
    }
}
