//! Shared run helpers for the experiment harnesses.

use std::collections::HashMap;

use neon_core::cost::{CostModel, SchedParams};
use neon_core::sched::SchedulerKind;
use neon_core::workload::BoxedWorkload;
use neon_core::world::{World, WorldConfig};
use neon_core::RunReport;
use neon_sim::SimDuration;

/// Default horizon for standalone (baseline) runs.
pub const ALONE_HORIZON: SimDuration = SimDuration::from_millis(800);
/// Default horizon for multiprogrammed runs.
pub const MIX_HORIZON: SimDuration = SimDuration::from_millis(2_000);
/// Warmup fraction of rounds dropped before averaging.
pub const WARMUP: f64 = 0.2;
/// Default experiment seed.
pub const DEFAULT_SEED: u64 = 0xA5D0;

/// Everything a single simulation run needs.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// The policy under test.
    pub scheduler: SchedulerKind,
    /// Simulated duration.
    pub horizon: SimDuration,
    /// RNG seed.
    pub seed: u64,
    /// Record per-request logs (Figure 2 only).
    pub record_requests: bool,
    /// Cost-model override (ablations); `None` uses defaults.
    pub cost: Option<CostModel>,
    /// Policy-parameter override (ablations); `None` uses defaults.
    pub params: Option<SchedParams>,
}

impl RunSpec {
    /// A standard run of `scheduler` over `horizon`.
    pub fn new(scheduler: SchedulerKind, horizon: SimDuration) -> Self {
        RunSpec {
            scheduler,
            horizon,
            seed: DEFAULT_SEED,
            record_requests: false,
            cost: None,
            params: None,
        }
    }

    /// Overrides the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables per-request logging.
    pub fn recording(mut self) -> Self {
        self.record_requests = true;
        self
    }

    /// Overrides the cost model.
    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.cost = Some(cost);
        self
    }

    /// Overrides the policy parameters.
    pub fn with_params(mut self, params: SchedParams) -> Self {
        self.params = Some(params);
        self
    }
}

/// Runs `workloads` together under the spec and returns the report.
pub fn run_mix(spec: &RunSpec, workloads: Vec<BoxedWorkload>) -> RunReport {
    let params = spec.params.clone().unwrap_or_default();
    let config = WorldConfig {
        cost: spec.cost.clone().unwrap_or_default(),
        params: params.clone(),
        seed: spec.seed,
        record_requests: spec.record_requests,
        ..WorldConfig::default()
    };
    let mut world = World::new(config, spec.scheduler.build(params));
    for w in workloads {
        // lint: allow(unchecked-unwrap) — experiment worlds are sized to
        // admit their fixed task set
        world.add_task(w).expect("device resources exhausted");
    }
    world.run(spec.horizon)
}

/// Runs one workload alone under the spec.
pub fn run_alone(spec: &RunSpec, workload: BoxedWorkload) -> RunReport {
    run_mix(spec, vec![workload])
}

/// Mean steady-state round time of task `idx` in a report.
///
/// # Panics
///
/// Panics if the task completed no rounds — experiments are expected to
/// size horizons so every task makes progress.
pub fn mean_round(report: &RunReport, idx: usize) -> SimDuration {
    report.tasks[idx].mean_round(WARMUP).unwrap_or_else(|| {
        panic!(
            "task {idx} ({}) completed no rounds",
            report.tasks[idx].name
        )
    })
}

/// A cache of standalone (direct-access) round times, keyed by workload
/// name — co-runner baselines are reused across scheduler columns.
#[derive(Debug, Default)]
pub struct AloneCache {
    rounds: HashMap<String, SimDuration>,
    seed: u64,
    horizon: SimDuration,
}

impl AloneCache {
    /// Creates a cache whose baselines run for `horizon` with `seed`.
    pub fn new(horizon: SimDuration, seed: u64) -> Self {
        AloneCache {
            rounds: HashMap::new(),
            seed,
            horizon,
        }
    }

    /// The standalone mean round of `workload` under direct access,
    /// computed once per distinct workload name.
    pub fn round(&mut self, workload: &BoxedWorkload) -> SimDuration {
        let key = workload.name().to_string();
        if let Some(&r) = self.rounds.get(&key) {
            return r;
        }
        let spec = RunSpec::new(SchedulerKind::Direct, self.horizon).with_seed(self.seed);
        let report = run_alone(&spec, workload.clone());
        let r = mean_round(&report, 0);
        self.rounds.insert(key, r);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neon_workloads::Throttle;

    #[test]
    fn run_alone_produces_rounds() {
        let spec = RunSpec::new(SchedulerKind::Direct, SimDuration::from_millis(50));
        let report = run_alone(
            &spec,
            Box::new(Throttle::new(SimDuration::from_micros(100))),
        );
        assert!(report.tasks[0].rounds_completed() > 100);
        let round = mean_round(&report, 0);
        assert!(round >= SimDuration::from_micros(98));
        assert!(round <= SimDuration::from_micros(115));
    }

    #[test]
    fn alone_cache_reuses_results() {
        let mut cache = AloneCache::new(SimDuration::from_millis(50), 1);
        let w: BoxedWorkload = Box::new(Throttle::new(SimDuration::from_micros(50)));
        let a = cache.round(&w);
        let b = cache.round(&w);
        assert_eq!(a, b);
        assert_eq!(cache.rounds.len(), 1);
    }
}
