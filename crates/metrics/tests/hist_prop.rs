//! Property tests: the streaming histogram's quantiles stay within the
//! documented relative-error bound of the exact nearest-rank oracle
//! ([`Summary::percentile`]), for direct recording and after merging
//! arbitrary splits of the sample stream.

use neon_metrics::{Distribution, StreamingHistogram, Summary};
use neon_sim::SimDuration;
use proptest::prelude::*;

/// Asserts one histogram tracks the oracle on a spread of quantiles.
fn assert_within_bound(
    h: &StreamingHistogram,
    oracle: &Summary,
    context: &str,
) -> Result<(), String> {
    prop_assert_eq!(h.count(), oracle.count() as u64);
    for p in [0.0, 1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 100.0] {
        let exact = oracle.percentile(p).as_nanos() as f64;
        let approx = h.quantile(p).as_nanos() as f64;
        let err = (approx - exact).abs() / exact.max(1.0);
        prop_assert!(
            err <= StreamingHistogram::RELATIVE_ERROR_BOUND,
            "{context}: p{p} exact {exact} approx {approx} err {err}"
        );
    }
    // min/max are tracked exactly, mean within the bucket bound too
    // (it is computed from the exact running sum, so compare exactly).
    prop_assert_eq!(h.min(), oracle.min());
    prop_assert_eq!(h.max(), oracle.max());
    prop_assert_eq!(h.mean().as_nanos(), oracle.mean().as_nanos());
    Ok(())
}

proptest! {
    /// Direct recording: quantiles within the documented bound of the
    /// exact oracle on arbitrary sample sets spanning the exact region
    /// through multi-millisecond values.
    #[test]
    fn quantile_tracks_exact_oracle(
        raw in proptest::collection::vec(0u64..50_000_000, 1..400),
    ) {
        let samples: Vec<SimDuration> =
            raw.iter().map(|&v| SimDuration::from_nanos(v)).collect();
        let mut h = StreamingHistogram::new();
        for &s in &samples {
            h.record(s);
        }
        let oracle = Summary::of(&samples);
        assert_within_bound(&h, &oracle, "direct")?;
        prop_assert!(h.buckets_used() <= StreamingHistogram::MAX_BUCKETS);
    }

    /// Merging an arbitrary split of the stream is indistinguishable
    /// from recording it whole: the merged histogram equals the
    /// directly recorded one and still tracks the oracle.
    #[test]
    fn merge_of_arbitrary_splits_tracks_exact_oracle(
        raw in proptest::collection::vec(0u64..50_000_000, 2..400),
        cut_seed in 0u64..u64::MAX,
    ) {
        let samples: Vec<SimDuration> =
            raw.iter().map(|&v| SimDuration::from_nanos(v)).collect();
        // Deterministic arbitrary split: each sample lands in one of
        // three shards chosen by a hash of (cut_seed, index).
        let mut shards = [
            StreamingHistogram::new(),
            StreamingHistogram::new(),
            StreamingHistogram::new(),
        ];
        let mut whole = StreamingHistogram::new();
        for (i, &s) in samples.iter().enumerate() {
            let pick = (cut_seed
                .wrapping_add(i as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                >> 32)
                % 3;
            shards[pick as usize].record(s);
            whole.record(s);
        }
        let mut merged = StreamingHistogram::new();
        for shard in &shards {
            merged.merge(shard);
        }
        prop_assert_eq!(&merged, &whole, "merge must equal whole-stream recording");
        let oracle = Summary::of(&samples);
        assert_within_bound(&merged, &oracle, "merged")?;
    }
}
