//! Typed counter registries.
//!
//! A [`Counters`] block is a dense array of `u64` counters indexed by
//! a caller-defined key enum, so incrementing is a plain integer bump
//! (no hashing, no strings on the hot path) while emission still sees
//! stable machine-readable labels via [`CounterKey::label`]. Blocks
//! [`merge`](Counters::merge), which is how per-device stats fold into
//! run-wide stats.

use std::fmt;
use std::marker::PhantomData;

/// A key type usable with [`Counters`]: a fieldless enum enumerating
/// every counter with a dense index and a stable label.
pub trait CounterKey: Copy + Eq + 'static {
    /// Every key, in emission order.
    const ALL: &'static [Self];

    /// Dense index in `0..ALL.len()`; `ALL[k.index()] == k`.
    fn index(self) -> usize;

    /// Stable snake-case label used in JSON/CSV emission.
    fn label(self) -> &'static str;
}

/// A fixed-size block of named `u64` counters.
///
/// # Example
///
/// ```
/// use neon_metrics::{CounterKey, Counters};
///
/// #[derive(Debug, Clone, Copy, PartialEq, Eq)]
/// enum Key { Hits, Misses }
/// impl CounterKey for Key {
///     const ALL: &'static [Key] = &[Key::Hits, Key::Misses];
///     fn index(self) -> usize { self as usize }
///     fn label(self) -> &'static str {
///         match self { Key::Hits => "hits", Key::Misses => "misses" }
///     }
/// }
///
/// let mut c = Counters::<Key>::new();
/// c.bump(Key::Hits);
/// c.add(Key::Misses, 3);
/// assert_eq!(c.get(Key::Hits), 1);
/// assert_eq!(c.get(Key::Misses), 3);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Counters<K: CounterKey> {
    values: Vec<u64>,
    _key: PhantomData<K>,
}

impl<K: CounterKey> Counters<K> {
    /// Creates a block with every counter at zero.
    pub fn new() -> Self {
        Counters {
            values: vec![0; K::ALL.len()],
            _key: PhantomData,
        }
    }

    /// Increments a counter by one.
    #[inline]
    pub fn bump(&mut self, key: K) {
        self.values[key.index()] += 1;
    }

    /// Increments a counter by `n`.
    #[inline]
    pub fn add(&mut self, key: K, n: u64) {
        self.values[key.index()] += n;
    }

    /// Current value of a counter.
    #[inline]
    pub fn get(&self, key: K) -> u64 {
        self.values[key.index()]
    }

    /// Overwrites a counter (used when folding externally tracked
    /// totals into a block at report time).
    pub fn set(&mut self, key: K, value: u64) {
        self.values[key.index()] = value;
    }

    /// Adds every counter of `other` into `self`.
    pub fn merge(&mut self, other: &Counters<K>) {
        for (v, o) in self.values.iter_mut().zip(&other.values) {
            *v += o;
        }
    }

    /// `(key, value)` pairs in [`CounterKey::ALL`] order.
    pub fn iter(&self) -> impl Iterator<Item = (K, u64)> + '_ {
        K::ALL.iter().map(|&k| (k, self.values[k.index()]))
    }

    /// `true` if every counter is zero.
    pub fn is_zero(&self) -> bool {
        self.values.iter().all(|&v| v == 0)
    }
}

impl<K: CounterKey> Default for Counters<K> {
    fn default() -> Self {
        Counters::new()
    }
}

impl<K: CounterKey + fmt::Debug> fmt::Debug for Counters<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut map = f.debug_map();
        for (k, v) in self.iter() {
            map.entry(&k.label(), &v);
        }
        map.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum Key {
        A,
        B,
        C,
    }

    impl CounterKey for Key {
        const ALL: &'static [Key] = &[Key::A, Key::B, Key::C];
        fn index(self) -> usize {
            self as usize
        }
        fn label(self) -> &'static str {
            match self {
                Key::A => "a",
                Key::B => "b",
                Key::C => "c",
            }
        }
    }

    #[test]
    fn new_block_is_zero() {
        let c = Counters::<Key>::new();
        assert!(c.is_zero());
        assert_eq!(c.get(Key::B), 0);
    }

    #[test]
    fn bump_add_set_get() {
        let mut c = Counters::<Key>::new();
        c.bump(Key::A);
        c.bump(Key::A);
        c.add(Key::B, 5);
        c.set(Key::C, 9);
        assert_eq!(c.get(Key::A), 2);
        assert_eq!(c.get(Key::B), 5);
        assert_eq!(c.get(Key::C), 9);
        assert!(!c.is_zero());
    }

    #[test]
    fn merge_sums_counterwise() {
        let mut a = Counters::<Key>::new();
        a.add(Key::A, 1);
        a.add(Key::C, 2);
        let mut b = Counters::<Key>::new();
        b.add(Key::A, 10);
        b.add(Key::B, 20);
        a.merge(&b);
        assert_eq!(a.get(Key::A), 11);
        assert_eq!(a.get(Key::B), 20);
        assert_eq!(a.get(Key::C), 2);
    }

    #[test]
    fn iter_follows_all_order() {
        let mut c = Counters::<Key>::new();
        c.add(Key::B, 7);
        let pairs: Vec<(Key, u64)> = c.iter().collect();
        assert_eq!(pairs, vec![(Key::A, 0), (Key::B, 7), (Key::C, 0)]);
    }

    #[test]
    fn debug_uses_labels() {
        let mut c = Counters::<Key>::new();
        c.bump(Key::A);
        let text = format!("{c:?}");
        assert!(text.contains("\"a\": 1"));
    }
}
