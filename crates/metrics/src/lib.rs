//! # neon-metrics
//!
//! Metrics used by the disengaged-scheduling evaluation:
//!
//! - [`cdf::Log2Cdf`] — log₂-binned distributions of request
//!   inter-arrival and service periods (Figure 2).
//! - [`fairness`] — slowdown, normalized runtime, the paper's
//!   *concurrency efficiency* metric Σᵢ(tᵢ/tᶜᵢ), and the Jain fairness
//!   index.
//! - [`summary::Summary`] — mean/min/max/percentile reductions.
//! - [`hist::StreamingHistogram`] — bounded, mergeable log-linear
//!   quantile sketches for long-running simulations, queried alongside
//!   [`Summary`] through the [`hist::Distribution`] trait.
//! - [`counters::Counters`] — typed counter registries (plain integer
//!   bumps keyed by a fieldless enum).
//! - [`table::Table`] — fixed-width ASCII tables and CSV output for the
//!   experiment binaries.

pub mod cdf;
pub mod counters;
pub mod fairness;
pub mod hist;
pub mod summary;
pub mod table;

pub use cdf::Log2Cdf;
pub use counters::{CounterKey, Counters};
pub use fairness::{concurrency_efficiency, jain_index, slowdown};
pub use hist::{Distribution, StreamingHistogram};
pub use summary::Summary;
pub use table::Table;
