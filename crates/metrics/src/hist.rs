//! Bounded streaming distribution sketches.
//!
//! [`StreamingHistogram`] is an HDR-style log-linear histogram over
//! durations: memory is fixed regardless of how many samples are
//! recorded, two histograms [`merge`](StreamingHistogram::merge)
//! losslessly (bucket-wise), and every quantile carries a documented
//! worst-case relative error
//! ([`StreamingHistogram::RELATIVE_ERROR_BOUND`]). It is the bounded
//! replacement for the per-task sample `Vec`s that made long runs
//! scale memory with tenant-rounds; the exact
//! [`Summary`](crate::Summary) path remains available as the oracle,
//! and both are queried through the [`Distribution`] trait.
//!
//! # Bucketing
//!
//! Durations are bucketed on their nanosecond value `v`:
//!
//! - `v < 2^m` (the *exact region*): one bucket per nanosecond, no
//!   error. `m` is [`StreamingHistogram::SUB_BITS`].
//! - `v ≥ 2^m`: the octave `[2^e, 2^(e+1))` containing `v` is split
//!   into `2^m` equal sub-buckets keyed by the top `m` mantissa bits.
//!
//! A quantile reports the *midpoint* of the bucket holding the
//! nearest-rank sample, so its error is at most half a bucket width:
//! `width/2 / low ≤ 2^(e-m)/2 / 2^e = 2^-(m+1)`. With `m = 7` that is
//! `1/256 ≈ 0.39%` — comfortably inside the 1% the acceptance tests
//! demand. The full 64-bit range needs at most
//! [`StreamingHistogram::MAX_BUCKETS`] (7424) buckets, so a `u16`
//! indexes them; storage is a sparse sorted vec that only pays for
//! octaves actually touched.

use neon_sim::SimDuration;

/// Read-only view over a distribution of durations: the common query
/// interface of the exact [`Summary`](crate::Summary) oracle and the
/// bounded [`StreamingHistogram`] sketch, so report code asks for
/// percentiles without caring which mode produced them.
pub trait Distribution {
    /// Number of recorded samples.
    fn count(&self) -> u64;
    /// Nearest-rank quantile, `p` in `[0, 100]` (zero when empty).
    fn quantile(&self, p: f64) -> SimDuration;
    /// Arithmetic mean (zero when empty).
    fn mean(&self) -> SimDuration;
    /// Smallest recorded sample (zero when empty).
    fn min(&self) -> SimDuration;
    /// Largest recorded sample (zero when empty).
    fn max(&self) -> SimDuration;
    /// `true` if nothing was recorded.
    fn is_empty(&self) -> bool {
        self.count() == 0
    }
}

impl Distribution for crate::Summary {
    fn count(&self) -> u64 {
        crate::Summary::count(self) as u64
    }
    fn quantile(&self, p: f64) -> SimDuration {
        self.percentile(p)
    }
    fn mean(&self) -> SimDuration {
        crate::Summary::mean(self)
    }
    fn min(&self) -> SimDuration {
        crate::Summary::min(self)
    }
    fn max(&self) -> SimDuration {
        crate::Summary::max(self)
    }
    fn is_empty(&self) -> bool {
        crate::Summary::is_empty(self)
    }
}

const SUB_BITS: u32 = 7;
const SUB_COUNT: u64 = 1 << SUB_BITS;

/// A mergeable, fixed-memory log-linear histogram of durations.
///
/// # Example
///
/// ```
/// use neon_metrics::{Distribution, StreamingHistogram};
/// use neon_sim::SimDuration;
///
/// let mut h = StreamingHistogram::new();
/// for us in 1..=100u64 {
///     h.record(SimDuration::from_micros(us));
/// }
/// let p50 = h.quantile(50.0).as_nanos() as f64;
/// let err = (p50 - 50_000.0).abs() / 50_000.0;
/// assert!(err <= StreamingHistogram::RELATIVE_ERROR_BOUND);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StreamingHistogram {
    /// Sparse `(bucket, count)` pairs, sorted by bucket index.
    buckets: Vec<(u16, u64)>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl StreamingHistogram {
    /// Mantissa bits per octave: each power-of-two range is split into
    /// `2^SUB_BITS` equal sub-buckets, and values below `2^SUB_BITS`
    /// nanoseconds are stored exactly.
    pub const SUB_BITS: u32 = SUB_BITS;

    /// Worst-case relative error of [`quantile`](Self::quantile) with
    /// respect to the true nearest-rank sample: `2^-(SUB_BITS+1)`.
    pub const RELATIVE_ERROR_BOUND: f64 = 1.0 / (1u64 << (SUB_BITS + 1)) as f64;

    /// Upper bound on distinct buckets (and thus on memory) no matter
    /// how many samples are recorded: the exact region plus
    /// `64 - SUB_BITS` octaves of `2^SUB_BITS` sub-buckets each.
    pub const MAX_BUCKETS: usize = ((64 - SUB_BITS as usize) * SUB_COUNT as usize) + 128;

    /// Creates an empty histogram.
    pub fn new() -> Self {
        StreamingHistogram::default()
    }

    fn bucket_of(v: u64) -> u16 {
        if v < SUB_COUNT {
            // lint: allow(narrowing-cast) — the branch guarantees v <
            // SUB_COUNT, which fits u16
            v as u16
        } else {
            let e = 63 - v.leading_zeros();
            let frac = (v >> (e - SUB_BITS)) - SUB_COUNT;
            // lint: allow(narrowing-cast) — bucket indexes are bounded by
            // MAX_BUCKETS, which fits u16
            ((e - SUB_BITS + 1) as u64 * SUB_COUNT + frac) as u16
        }
    }

    /// Inclusive lower edge of a bucket.
    fn low_of(bucket: u16) -> u64 {
        let b = bucket as u64;
        if b < SUB_COUNT {
            b
        } else {
            // lint: allow(narrowing-cast) — b / SUB_COUNT - 1 < 64 for any
            // bucket index below MAX_BUCKETS
            let shift = (b / SUB_COUNT - 1) as u32;
            (SUB_COUNT + b % SUB_COUNT) << shift
        }
    }

    /// Midpoint representative of a bucket (exact in the exact region).
    fn representative(bucket: u16) -> u64 {
        let b = bucket as u64;
        if b < SUB_COUNT {
            b
        } else {
            // lint: allow(narrowing-cast) — b / SUB_COUNT - 1 < 64 for any
            // bucket index below MAX_BUCKETS
            let shift = (b / SUB_COUNT - 1) as u32;
            let width = 1u64 << shift;
            Self::low_of(bucket) + width / 2
        }
    }

    /// Records one sample.
    pub fn record(&mut self, d: SimDuration) {
        self.record_n(d, 1);
    }

    /// Records `n` identical samples in one bump.
    pub fn record_n(&mut self, d: SimDuration, n: u64) {
        if n == 0 {
            return;
        }
        let v = d.as_nanos();
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += n;
        self.sum += v as u128 * n as u128;
        let bucket = Self::bucket_of(v);
        match self.buckets.binary_search_by_key(&bucket, |&(b, _)| b) {
            Ok(i) => self.buckets[i].1 += n,
            Err(i) => self.buckets.insert(i, (bucket, n)),
        }
    }

    /// Folds `other` into `self`; the result is indistinguishable from
    /// a single histogram that recorded both sample streams.
    pub fn merge(&mut self, other: &StreamingHistogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum += other.sum;
        for &(bucket, n) in &other.buckets {
            match self.buckets.binary_search_by_key(&bucket, |&(b, _)| b) {
                Ok(i) => self.buckets[i].1 += n,
                Err(i) => self.buckets.insert(i, (bucket, n)),
            }
        }
    }

    /// Number of distinct buckets in use (bounded by
    /// [`MAX_BUCKETS`](Self::MAX_BUCKETS)).
    pub fn buckets_used(&self) -> usize {
        self.buckets.len()
    }

    /// Sum of all recorded samples (saturating at the `SimDuration`
    /// range).
    pub fn total(&self) -> SimDuration {
        SimDuration::from_nanos(u64::try_from(self.sum).unwrap_or(u64::MAX))
    }
}

impl Distribution for StreamingHistogram {
    fn count(&self) -> u64 {
        self.count
    }

    /// Nearest-rank quantile (matching
    /// [`Summary::percentile`](crate::Summary::percentile) semantics):
    /// the midpoint of the bucket containing the sample of rank
    /// `ceil(p/100 · count)`, clamped to the observed `[min, max]`.
    fn quantile(&self, p: f64) -> SimDuration {
        if self.count == 0 {
            return SimDuration::ZERO;
        }
        let p = p.clamp(0.0, 100.0);
        let rank = ((p / 100.0) * self.count as f64).ceil() as u64;
        let rank = rank.max(1);
        let mut seen = 0u64;
        for &(bucket, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                let rep = Self::representative(bucket).clamp(self.min, self.max);
                return SimDuration::from_nanos(rep);
            }
        }
        SimDuration::from_nanos(self.max)
    }

    fn mean(&self) -> SimDuration {
        if self.count == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos(
                u64::try_from(self.sum / self.count as u128).unwrap_or(u64::MAX),
            )
        }
    }

    fn min(&self) -> SimDuration {
        SimDuration::from_nanos(if self.count == 0 { 0 } else { self.min })
    }

    fn max(&self) -> SimDuration {
        SimDuration::from_nanos(self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Summary;

    fn ns(v: u64) -> SimDuration {
        SimDuration::from_nanos(v)
    }

    #[test]
    fn empty_histogram_is_zeroes() {
        let h = StreamingHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(50.0), SimDuration::ZERO);
        assert_eq!(h.mean(), SimDuration::ZERO);
        assert_eq!(h.min(), SimDuration::ZERO);
        assert_eq!(h.max(), SimDuration::ZERO);
    }

    #[test]
    fn exact_region_is_lossless() {
        let mut h = StreamingHistogram::new();
        for v in 0..128u64 {
            h.record(ns(v));
        }
        assert_eq!(h.quantile(0.0), ns(0));
        assert_eq!(h.quantile(100.0), ns(127));
        // Nearest-rank p50 over 128 samples 0..=127 is rank 64 → 63.
        assert_eq!(h.quantile(50.0), ns(63));
        assert_eq!(h.buckets_used(), 128);
    }

    #[test]
    fn quantiles_track_the_exact_oracle_within_bound() {
        let mut h = StreamingHistogram::new();
        let samples: Vec<SimDuration> = (0..2000u64)
            .map(|i| ns(1 + i * i * 37 + (i % 13) * 1000))
            .collect();
        for &s in &samples {
            h.record(s);
        }
        let oracle = Summary::of(&samples);
        for p in [1.0, 10.0, 50.0, 90.0, 95.0, 99.0, 99.9] {
            let exact = oracle.percentile(p).as_nanos() as f64;
            let approx = h.quantile(p).as_nanos() as f64;
            let err = (approx - exact).abs() / exact.max(1.0);
            assert!(
                err <= StreamingHistogram::RELATIVE_ERROR_BOUND,
                "p{p}: exact {exact} vs approx {approx} (err {err})"
            );
        }
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut all = StreamingHistogram::new();
        let mut left = StreamingHistogram::new();
        let mut right = StreamingHistogram::new();
        for i in 0..500u64 {
            let v = ns(i * 997 + 3);
            all.record(v);
            if i % 3 == 0 {
                left.record(v);
            } else {
                right.record(v);
            }
        }
        left.merge(&right);
        assert_eq!(left, all);
    }

    #[test]
    fn merge_into_empty_copies() {
        let mut src = StreamingHistogram::new();
        src.record(ns(42));
        src.record(ns(1 << 20));
        let mut dst = StreamingHistogram::new();
        dst.merge(&src);
        assert_eq!(dst, src);
        // Merging an empty histogram is a no-op.
        let before = dst.clone();
        dst.merge(&StreamingHistogram::new());
        assert_eq!(dst, before);
    }

    #[test]
    fn memory_stays_bounded_under_heavy_recording() {
        let mut h = StreamingHistogram::new();
        for i in 0..100_000u64 {
            h.record(ns(i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 8));
        }
        assert_eq!(h.count(), 100_000);
        assert!(h.buckets_used() <= StreamingHistogram::MAX_BUCKETS);
    }

    #[test]
    fn extreme_values_round_trip() {
        let mut h = StreamingHistogram::new();
        h.record(ns(0));
        h.record(ns(u64::MAX));
        assert_eq!(h.min(), ns(0));
        assert_eq!(h.max(), ns(u64::MAX));
        // Representative of the top bucket clamps to the observed max.
        let top = h.quantile(100.0).as_nanos() as f64;
        let err = (top - u64::MAX as f64).abs() / u64::MAX as f64;
        assert!(err <= StreamingHistogram::RELATIVE_ERROR_BOUND);
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let mut a = StreamingHistogram::new();
        let mut b = StreamingHistogram::new();
        for _ in 0..7 {
            a.record(ns(12_345));
        }
        b.record_n(ns(12_345), 7);
        b.record_n(ns(1), 0); // zero-count is a no-op
        assert_eq!(a, b);
    }

    #[test]
    fn mean_and_total_are_exact() {
        let mut h = StreamingHistogram::new();
        for v in [10u64, 20, 30, 40] {
            h.record(ns(v));
        }
        assert_eq!(h.mean(), ns(25));
        assert_eq!(h.total(), ns(100));
    }
}
