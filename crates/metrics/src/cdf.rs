//! Log₂-binned cumulative distributions (Figure 2).
//!
//! The paper plots request inter-arrival and service periods as CDFs
//! over "the log₂ time continuum separated in bins (µs)": bin *k*
//! collects samples in `[2^k, 2^(k+1))` µs, with bin 0 additionally
//! holding everything below 1 µs.

use neon_sim::SimDuration;

/// A histogram over log₂(µs) bins with CDF rendering.
///
/// # Example
///
/// ```
/// use neon_metrics::Log2Cdf;
/// use neon_sim::SimDuration;
///
/// let mut cdf = Log2Cdf::new(18);
/// for us in [1u64, 2, 3, 9, 300] {
///     cdf.add(SimDuration::from_micros(us));
/// }
/// // 4 of 5 samples are below 2^4 = 16µs.
/// assert!(cdf.cumulative_percent(4) >= 80.0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Log2Cdf {
    bins: Vec<u64>,
    total: u64,
}

impl Log2Cdf {
    /// Creates a CDF with `bins` log₂(µs) bins; samples at or beyond
    /// `2^(bins-1)` µs land in the last bin.
    ///
    /// # Panics
    ///
    /// Panics if `bins` is zero.
    pub fn new(bins: usize) -> Self {
        assert!(bins > 0, "need at least one bin");
        Log2Cdf {
            bins: vec![0; bins],
            total: 0,
        }
    }

    /// The bin index a duration falls into.
    pub fn bin_of(&self, d: SimDuration) -> usize {
        let us = d.as_micros();
        let bin = if us == 0 {
            0
        } else {
            (63 - us.leading_zeros()) as usize
        };
        bin.min(self.bins.len() - 1)
    }

    /// Adds one sample.
    pub fn add(&mut self, d: SimDuration) {
        let bin = self.bin_of(d);
        self.bins[bin] += 1;
        self.total += 1;
    }

    /// Adds every sample from an iterator.
    pub fn extend(&mut self, samples: impl IntoIterator<Item = SimDuration>) {
        for s in samples {
            self.add(s);
        }
    }

    /// Total samples recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.bins.len()
    }

    /// Percentage of samples in bin `k`.
    pub fn percent(&self, k: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        100.0 * self.bins[k] as f64 / self.total as f64
    }

    /// Percentage of samples in bins `0..=k` (the CDF value plotted by
    /// Figure 2).
    pub fn cumulative_percent(&self, k: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let cum: u64 = self.bins[..=k.min(self.bins.len() - 1)].iter().sum();
        100.0 * cum as f64 / self.total as f64
    }

    /// The CDF as one row per bin: `(bin, cumulative %)`.
    pub fn rows(&self) -> Vec<(usize, f64)> {
        (0..self.bins.len())
            .map(|k| (k, self.cumulative_percent(k)))
            .collect()
    }

    /// The smallest bin whose cumulative share reaches `percent`.
    pub fn percentile_bin(&self, percent: f64) -> usize {
        for k in 0..self.bins.len() {
            if self.cumulative_percent(k) >= percent {
                return k;
            }
        }
        self.bins.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(v: u64) -> SimDuration {
        SimDuration::from_micros(v)
    }

    #[test]
    fn binning_is_log2_of_micros() {
        let cdf = Log2Cdf::new(18);
        assert_eq!(cdf.bin_of(SimDuration::from_nanos(500)), 0); // <1µs
        assert_eq!(cdf.bin_of(us(1)), 0);
        assert_eq!(cdf.bin_of(us(2)), 1);
        assert_eq!(cdf.bin_of(us(3)), 1);
        assert_eq!(cdf.bin_of(us(4)), 2);
        assert_eq!(cdf.bin_of(us(1023)), 9);
        assert_eq!(cdf.bin_of(us(1024)), 10);
    }

    #[test]
    fn overflow_lands_in_last_bin() {
        let cdf = Log2Cdf::new(4);
        assert_eq!(cdf.bin_of(us(1_000_000)), 3);
    }

    #[test]
    fn cumulative_reaches_hundred() {
        let mut cdf = Log2Cdf::new(18);
        cdf.extend([us(1), us(5), us(100), us(10_000)]);
        assert_eq!(cdf.total(), 4);
        let last = cdf.bins() - 1;
        assert!((cdf.cumulative_percent(last) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn percent_and_cumulative_agree() {
        let mut cdf = Log2Cdf::new(8);
        cdf.extend([us(1), us(1), us(2), us(8)]);
        assert!((cdf.percent(0) - 50.0).abs() < 1e-9);
        assert!((cdf.cumulative_percent(1) - 75.0).abs() < 1e-9);
        assert!((cdf.cumulative_percent(3) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn percentile_bin_finds_median() {
        let mut cdf = Log2Cdf::new(18);
        for v in [1, 1, 1, 8, 8, 8, 8, 8, 300, 300] {
            cdf.add(us(v));
        }
        assert_eq!(cdf.percentile_bin(50.0), 3); // 8µs is in bin 3
    }

    #[test]
    fn empty_cdf_is_zero_everywhere() {
        let cdf = Log2Cdf::new(8);
        assert_eq!(cdf.percent(0), 0.0);
        assert_eq!(cdf.cumulative_percent(7), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panics() {
        let _ = Log2Cdf::new(0);
    }
}
