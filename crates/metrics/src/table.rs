//! Fixed-width ASCII tables and CSV output for the experiment binaries.

use std::fmt::Write as _;

/// A simple column-aligned table builder.
///
/// # Example
///
/// ```
/// use neon_metrics::Table;
///
/// let mut t = Table::new(vec!["app".into(), "slowdown".into()]);
/// t.row(vec!["DCT".into(), "2.01".into()]);
/// let text = t.render();
/// assert!(text.contains("DCT"));
/// assert!(text.lines().count() >= 3); // header + rule + row
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    pub fn new(headers: Vec<String>) -> Self {
        assert!(!headers.is_empty(), "table needs at least one column");
        Table {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row; short rows are padded with empty cells, long rows
    /// truncated to the column count.
    pub fn row(&mut self, mut cells: Vec<String>) -> &mut Self {
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate().take(cols) {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:>width$}", width = widths[i]);
            }
            out.push('\n');
        };
        write_row(&mut out, &self.headers);
        let rule: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(rule));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }

    /// Renders the table as CSV (RFC-4180-style quoting for cells that
    /// need it).
    pub fn to_csv(&self) -> String {
        let quote = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| quote(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with two decimals (the precision used in tables).
pub fn fmt2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a percentage with one decimal.
pub fn fmt_pct(v: f64) -> String {
    format!("{v:.1}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(vec!["a".into(), "b".into()]);
        t.row(vec!["xxxx".into(), "1".into()]);
        t.row(vec!["y".into(), "22".into()]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        // All rows align to the same width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new(vec!["a".into(), "b".into(), "c".into()]);
        t.row(vec!["1".into()]);
        assert_eq!(t.len(), 1);
        assert!(t.render().lines().count() == 3);
    }

    #[test]
    fn csv_quotes_commas() {
        let mut t = Table::new(vec!["name".into(), "value".into()]);
        t.row(vec!["a,b".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt2(1.005), "1.00");
        assert_eq!(fmt2(2.5), "2.50");
        assert_eq!(fmt_pct(12.34), "12.3%");
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn empty_headers_panic() {
        let _ = Table::new(vec![]);
    }
}
