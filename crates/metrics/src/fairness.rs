//! Fairness and efficiency metrics from §5.3.

use neon_sim::SimDuration;

/// Slowdown of a task in a concurrent run relative to running alone:
/// `concurrent_round / alone_round`. Values near the task count mean
/// fair sharing; large values mean starvation.
///
/// # Panics
///
/// Panics if `alone` is zero.
pub fn slowdown(alone: SimDuration, concurrent: SimDuration) -> f64 {
    concurrent.ratio(alone)
}

/// The paper's concurrency-efficiency metric: given per-task run times
/// alone (`t_i`) and together (`tc_i`), `Σ t_i / tc_i`.
///
/// A sum below 1.0 means device time was lost to scheduling or context
/// switching; above 1.0 means synergy (overlap between DMA and compute,
/// or a co-runner exploiting another's idleness).
///
/// Pairs with a zero concurrent time (task never completed a round) are
/// skipped.
pub fn concurrency_efficiency(pairs: &[(SimDuration, SimDuration)]) -> f64 {
    pairs
        .iter()
        .filter(|(_, tc)| !tc.is_zero())
        .map(|(t, tc)| t.ratio(*tc))
        .sum()
}

/// Jain's fairness index over per-task resource shares: 1.0 is
/// perfectly even, 1/n is maximally skewed.
///
/// Returns 1.0 for an empty slice (vacuously fair).
pub fn jain_index(shares: &[f64]) -> f64 {
    if shares.is_empty() {
        return 1.0;
    }
    let sum: f64 = shares.iter().sum();
    let sum_sq: f64 = shares.iter().map(|s| s * s).sum();
    if sum_sq == 0.0 {
        return 1.0;
    }
    sum * sum / (shares.len() as f64 * sum_sq)
}

/// Normalized runtime (the y-axis of Figure 6): identical to
/// [`slowdown`], provided under the figure's terminology.
pub fn normalized_runtime(alone: SimDuration, concurrent: SimDuration) -> f64 {
    slowdown(alone, concurrent)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(v: u64) -> SimDuration {
        SimDuration::from_micros(v)
    }

    #[test]
    fn slowdown_is_ratio() {
        assert!((slowdown(us(10), us(20)) - 2.0).abs() < 1e-12);
        assert!((slowdown(us(10), us(10)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn efficiency_of_perfect_halving_is_one() {
        let pairs = [(us(10), us(20)), (us(30), us(60))];
        assert!((concurrency_efficiency(&pairs) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn efficiency_detects_loss_and_synergy() {
        let lossy = [(us(10), us(40)), (us(10), us(40))];
        assert!(concurrency_efficiency(&lossy) < 1.0);
        let synergistic = [(us(10), us(11)), (us(10), us(11))];
        assert!(concurrency_efficiency(&synergistic) > 1.0);
    }

    #[test]
    fn efficiency_skips_unfinished_tasks() {
        let pairs = [(us(10), us(20)), (us(10), SimDuration::ZERO)];
        assert!((concurrency_efficiency(&pairs) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn jain_even_is_one() {
        assert!((jain_index(&[0.25, 0.25, 0.25, 0.25]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn jain_skewed_tends_to_reciprocal_n() {
        let idx = jain_index(&[1.0, 0.0, 0.0, 0.0]);
        assert!((idx - 0.25).abs() < 1e-12);
    }

    #[test]
    fn jain_edge_cases() {
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
    }
}
