//! Scalar reductions over duration samples.

use neon_sim::SimDuration;

/// Summary statistics over a set of durations.
///
/// # Example
///
/// ```
/// use neon_metrics::Summary;
/// use neon_sim::SimDuration;
///
/// let samples: Vec<SimDuration> = (1..=100).map(SimDuration::from_micros).collect();
/// let s = Summary::of(&samples);
/// assert_eq!(s.mean().as_micros(), 50);
/// assert_eq!(s.percentile(50.0).as_micros(), 50);
/// assert_eq!(s.max().as_micros(), 100);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Summary {
    sorted: Vec<SimDuration>,
    total: SimDuration,
}

impl Summary {
    /// Builds a summary; the input need not be sorted.
    pub fn of(samples: &[SimDuration]) -> Self {
        let mut sorted = samples.to_vec();
        sorted.sort();
        let total = sorted.iter().copied().sum();
        Summary { sorted, total }
    }

    /// Sample count.
    pub fn count(&self) -> usize {
        self.sorted.len()
    }

    /// `true` if no samples were provided.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Arithmetic mean (zero for an empty summary).
    pub fn mean(&self) -> SimDuration {
        if self.sorted.is_empty() {
            SimDuration::ZERO
        } else {
            self.total / self.sorted.len() as u64
        }
    }

    /// Smallest sample (zero for an empty summary).
    pub fn min(&self) -> SimDuration {
        self.sorted.first().copied().unwrap_or(SimDuration::ZERO)
    }

    /// Largest sample (zero for an empty summary).
    pub fn max(&self) -> SimDuration {
        self.sorted.last().copied().unwrap_or(SimDuration::ZERO)
    }

    /// Sum of all samples.
    pub fn total(&self) -> SimDuration {
        self.total
    }

    /// Nearest-rank percentile, `p` in `[0, 100]` (zero for an empty
    /// summary).
    pub fn percentile(&self, p: f64) -> SimDuration {
        if self.sorted.is_empty() {
            return SimDuration::ZERO;
        }
        let p = p.clamp(0.0, 100.0);
        let rank = ((p / 100.0) * self.sorted.len() as f64).ceil() as usize;
        self.sorted[rank.max(1) - 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(v: u64) -> SimDuration {
        SimDuration::from_micros(v)
    }

    #[test]
    fn empty_summary_is_zeroes() {
        let s = Summary::of(&[]);
        assert!(s.is_empty());
        assert_eq!(s.mean(), SimDuration::ZERO);
        assert_eq!(s.min(), SimDuration::ZERO);
        assert_eq!(s.max(), SimDuration::ZERO);
        assert_eq!(s.percentile(99.0), SimDuration::ZERO);
    }

    #[test]
    fn unsorted_input_is_handled() {
        let s = Summary::of(&[us(30), us(10), us(20)]);
        assert_eq!(s.min(), us(10));
        assert_eq!(s.max(), us(30));
        assert_eq!(s.mean(), us(20));
        assert_eq!(s.total(), us(60));
    }

    #[test]
    fn percentile_extremes() {
        let s = Summary::of(&[us(1), us(2), us(3), us(4)]);
        assert_eq!(s.percentile(0.0), us(1));
        assert_eq!(s.percentile(100.0), us(4));
        assert_eq!(s.percentile(25.0), us(1));
        assert_eq!(s.percentile(75.0), us(3));
    }

    #[test]
    fn single_sample() {
        let s = Summary::of(&[us(7)]);
        assert_eq!(s.count(), 1);
        assert_eq!(s.percentile(50.0), us(7));
        assert_eq!(s.mean(), us(7));
    }
}
