//! Property tests for device-level conservation invariants.

use neon_gpu::{EngineClass, Gpu, GpuConfig, RequestKind, SubmitSpec, TaskId};
use neon_sim::{SimDuration, SimTime};
use proptest::prelude::*;

/// Drives the compute engine until quiescent; returns the finish time.
fn drain(gpu: &mut Gpu, mut now: SimTime) -> SimTime {
    while let Some(d) = gpu.try_dispatch(now, EngineClass::Compute) {
        gpu.complete_running(d.finish_at, EngineClass::Compute);
        now = d.finish_at;
    }
    now
}

proptest! {
    /// Per-task usage sums exactly to engine busy time, and busy time
    /// never exceeds the makespan.
    #[test]
    fn usage_conservation(sizes in proptest::collection::vec(1u64..500, 1..40)) {
        let mut gpu = Gpu::new(GpuConfig::default());
        let tasks = 3u32;
        let mut channels = Vec::new();
        for t in 0..tasks {
            let ctx = gpu.create_context(TaskId::new(t)).unwrap();
            channels.push(gpu.create_channel(ctx, RequestKind::Compute).unwrap());
        }
        for (i, &s) in sizes.iter().enumerate() {
            let ch = channels[i % channels.len()];
            gpu.submit(SimTime::ZERO, ch, SubmitSpec::compute(SimDuration::from_micros(s)))
                .unwrap();
        }
        let end = drain(&mut gpu, SimTime::ZERO);
        let usage: SimDuration = (0..tasks)
            .map(|t| gpu.usage_of(TaskId::new(t)))
            .sum();
        prop_assert_eq!(usage, gpu.engine_busy(EngineClass::Compute));
        prop_assert!(gpu.engine_busy(EngineClass::Compute) <= end.saturating_duration_since(SimTime::ZERO));
        prop_assert_eq!(gpu.completed_requests(), sizes.len() as u64);
        prop_assert!(gpu.is_fully_drained());
    }

    /// Reference counters advance monotonically to the submitted count
    /// on every channel.
    #[test]
    fn reference_counters_settle(counts in proptest::collection::vec(1usize..20, 1..4)) {
        let mut gpu = Gpu::new(GpuConfig::default());
        let mut channels = Vec::new();
        for (t, &n) in counts.iter().enumerate() {
            let ctx = gpu.create_context(TaskId::new(t as u32)).unwrap();
            let ch = gpu.create_channel(ctx, RequestKind::Compute).unwrap();
            for _ in 0..n {
                gpu.submit(SimTime::ZERO, ch, SubmitSpec::compute(SimDuration::from_micros(5)))
                    .unwrap();
            }
            channels.push((ch, n));
        }
        drain(&mut gpu, SimTime::ZERO);
        for (ch, n) in channels {
            let c = gpu.channel(ch).unwrap();
            prop_assert_eq!(c.completed_reference(), n as u64);
            prop_assert!(c.drained());
        }
    }

    /// Round-robin keeps per-task completion counts within one request
    /// of each other for equal-size, equal-count workloads.
    #[test]
    fn equal_tasks_complete_in_lockstep(n in 1usize..30, size in 1u64..200) {
        let mut gpu = Gpu::new(GpuConfig::default());
        let mut channels = Vec::new();
        for t in 0..2u32 {
            let ctx = gpu.create_context(TaskId::new(t)).unwrap();
            channels.push(gpu.create_channel(ctx, RequestKind::Compute).unwrap());
        }
        for _ in 0..n {
            for &ch in &channels {
                gpu.submit(SimTime::ZERO, ch, SubmitSpec::compute(SimDuration::from_micros(size)))
                    .unwrap();
            }
        }
        drain(&mut gpu, SimTime::ZERO);
        let a = gpu.usage_of(TaskId::new(0));
        let b = gpu.usage_of(TaskId::new(1));
        let diff = a.saturating_sub(b).max(b.saturating_sub(a));
        prop_assert!(
            diff <= SimDuration::from_micros(size + 8),
            "lockstep violated: {} vs {}", a, b
        );
    }

    /// Preemption conserves: preempted slice + rerun = original service
    /// in the task's usage accounting.
    #[test]
    fn preemption_conserves_usage(size in 50u64..2_000, cut in 1u64..40) {
        let mut gpu = Gpu::new(GpuConfig::default());
        let ctx = gpu.create_context(TaskId::new(0)).unwrap();
        let ch = gpu.create_channel(ctx, RequestKind::Compute).unwrap();
        gpu.submit(SimTime::ZERO, ch, SubmitSpec::compute(SimDuration::from_micros(size)))
            .unwrap();
        let d = gpu.try_dispatch(SimTime::ZERO, EngineClass::Compute).unwrap();
        // Cut somewhere strictly inside the execution.
        let cut_at = SimTime::from_micros(cut.min(size.saturating_sub(1)).max(1));
        prop_assume!(cut_at < d.finish_at);
        gpu.preempt_running(cut_at, EngineClass::Compute).unwrap();
        let d2 = gpu.try_dispatch(cut_at, EngineClass::Compute).unwrap();
        gpu.complete_running(d2.finish_at, EngineClass::Compute);
        // Total usage = elapsed slice before the cut (switch included)
        // + a fresh switch (preemption clears the engine context)
        // + the un-executed remainder of the service.
        let usage = gpu.usage_of(TaskId::new(0));
        let switch = gpu.config().context_switch;
        let cut_d = cut_at.saturating_duration_since(SimTime::ZERO);
        let executed = cut_d.saturating_sub(switch);
        let expected =
            cut_d + switch + SimDuration::from_micros(size).saturating_sub(executed);
        prop_assert_eq!(usage, expected);
    }
}
