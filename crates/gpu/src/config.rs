//! Device configuration.

use neon_sim::SimDuration;

/// Configuration of the modeled accelerator.
///
/// Defaults correspond to the paper's GTX670 ("Kepler") testbed as far
/// as the text documents it; see DESIGN.md §3 for the calibration
/// rationale of each constant.
///
/// # Example
///
/// ```
/// use neon_gpu::GpuConfig;
///
/// let cfg = GpuConfig {
///     total_channels: 8,
///     ..GpuConfig::default()
/// };
/// assert_eq!(cfg.total_channels, 8);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GpuConfig {
    /// Total channels the device supports. The paper observed that 48
    /// contexts × (1 compute + 1 DMA channel) exhausted the GTX670, i.e.
    /// 96 channels.
    pub total_channels: usize,
    /// Maximum contexts the device supports (48 on the GTX670).
    pub total_contexts: usize,
    /// Ring-buffer capacity per channel (outstanding requests).
    pub ring_capacity: usize,
    /// Cost to switch the compute engine between requests of different
    /// contexts. Source of <1.0 direct-access efficiency for small
    /// requests (Fig. 7).
    pub context_switch: SimDuration,
    /// Cooldown after servicing a graphics request during which the
    /// engine prefers pending compute work.
    ///
    /// Graphics channels are serviced immediately when no compute work
    /// is pending, but after each graphics request the engine spends
    /// at least this long on compute channels (if they have work)
    /// before returning to graphics. This reproduces §5.3's
    /// observation: against a small-request compute co-runner,
    /// glxgears requests complete at roughly one third of the
    /// co-runner's rate, while against large-request co-runners the
    /// disparity disappears (a single large compute request already
    /// exceeds the cooldown).
    pub graphics_cooldown: SimDuration,
}

impl Default for GpuConfig {
    fn default() -> Self {
        GpuConfig {
            total_channels: 96,
            total_contexts: 48,
            ring_capacity: 512,
            context_switch: SimDuration::from_micros(4),
            graphics_cooldown: SimDuration::from_micros(50),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_observations() {
        let cfg = GpuConfig::default();
        assert_eq!(cfg.total_contexts, 48);
        assert_eq!(cfg.total_channels, 96);
        assert!(!cfg.graphics_cooldown.is_zero());
    }
}
