//! GPU acceleration requests.
//!
//! A request is the basic unit of work submitted at the device interface
//! — a compute "kernel", a rendering call, or a DMA transfer. Requests
//! are opaque to the schedulers except for their submission and
//! completion events, exactly as in the paper.

use neon_sim::{SimDuration, SimTime};

use crate::ids::{ChannelId, ContextId, RequestId, TaskId};

/// The class of work a request performs.
///
/// The class determines which engine executes the request and its
/// arbitration weight on that engine (graphics channels are serviced at
/// a lower rate by the modeled device, mirroring the paper's §5.3
/// observation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RequestKind {
    /// A compute kernel (OpenCL/CUDA).
    Compute,
    /// A graphics/rendering call (OpenGL).
    Graphics,
    /// A host↔device transfer, executed by the DMA engine.
    Dma,
}

impl RequestKind {
    /// All request kinds, for exhaustive sweeps in tests.
    pub const ALL: [RequestKind; 3] = [
        RequestKind::Compute,
        RequestKind::Graphics,
        RequestKind::Dma,
    ];

    /// `true` if the request executes on the DMA engine.
    pub fn is_dma(self) -> bool {
        matches!(self, RequestKind::Dma)
    }
}

/// Parameters supplied by the submitting application for one request.
///
/// `service` is the ground-truth occupancy of the device; the schedulers
/// never see it directly (they estimate it from observed completions).
/// [`SimDuration::MAX`] models a request that never completes (the
/// paper's infinite-loop denial-of-service attack).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubmitSpec {
    /// Ground-truth device occupancy of the request.
    pub service: SimDuration,
    /// Work class (engine + arbitration weight).
    pub kind: RequestKind,
    /// Whether the submitting task blocks (spins on the reference
    /// counter) until the request completes.
    pub blocking: bool,
}

impl SubmitSpec {
    /// A blocking compute request of the given service time.
    pub fn compute(service: SimDuration) -> Self {
        SubmitSpec {
            service,
            kind: RequestKind::Compute,
            blocking: true,
        }
    }

    /// A non-blocking (pipelined) graphics request.
    pub fn graphics(service: SimDuration) -> Self {
        SubmitSpec {
            service,
            kind: RequestKind::Graphics,
            blocking: false,
        }
    }

    /// A non-blocking DMA transfer.
    pub fn dma(service: SimDuration) -> Self {
        SubmitSpec {
            service,
            kind: RequestKind::Dma,
            blocking: false,
        }
    }

    /// Marks the request non-blocking (pipelined).
    pub fn nonblocking(mut self) -> Self {
        self.blocking = false;
        self
    }

    /// An infinite-loop request that never completes on its own; used by
    /// the malicious-application scenarios.
    pub fn infinite_loop() -> Self {
        SubmitSpec {
            service: SimDuration::MAX,
            kind: RequestKind::Compute,
            blocking: true,
        }
    }
}

/// A request as tracked by the device, from submission to completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Globally unique id.
    pub id: RequestId,
    /// Submitting task (resource principal).
    pub task: TaskId,
    /// GPU context the channel belongs to.
    pub context: ContextId,
    /// Channel the request was submitted on.
    pub channel: ChannelId,
    /// Work class.
    pub kind: RequestKind,
    /// Ground-truth device occupancy.
    pub service: SimDuration,
    /// Whether the submitter blocks on completion.
    pub blocking: bool,
    /// Submission instant (channel-register write).
    pub submitted_at: SimTime,
    /// Per-channel reference number; the device writes this value to the
    /// channel's reference counter on completion.
    pub reference: u64,
}

impl Request {
    /// `true` if this request never completes on its own.
    pub fn is_unbounded(&self) -> bool {
        self.service == SimDuration::MAX
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_constructors_set_kind_and_blocking() {
        let c = SubmitSpec::compute(SimDuration::from_micros(10));
        assert_eq!(c.kind, RequestKind::Compute);
        assert!(c.blocking);

        let g = SubmitSpec::graphics(SimDuration::from_micros(10));
        assert_eq!(g.kind, RequestKind::Graphics);
        assert!(!g.blocking);

        let d = SubmitSpec::dma(SimDuration::from_micros(10));
        assert!(d.kind.is_dma());
        assert!(!d.blocking);
    }

    #[test]
    fn nonblocking_adapter() {
        let spec = SubmitSpec::compute(SimDuration::from_micros(1)).nonblocking();
        assert!(!spec.blocking);
    }

    #[test]
    fn infinite_loop_is_unbounded() {
        let spec = SubmitSpec::infinite_loop();
        assert_eq!(spec.service, SimDuration::MAX);
        let req = Request {
            id: RequestId::new(0),
            task: TaskId::new(0),
            context: ContextId::new(0),
            channel: ChannelId::new(0),
            kind: spec.kind,
            service: spec.service,
            blocking: spec.blocking,
            submitted_at: SimTime::ZERO,
            reference: 1,
        };
        assert!(req.is_unbounded());
    }

    #[test]
    fn only_dma_is_dma() {
        assert!(RequestKind::Dma.is_dma());
        assert!(!RequestKind::Compute.is_dma());
        assert!(!RequestKind::Graphics.is_dma());
    }
}
