//! The accelerator device: contexts, channels, engines and arbitration.
//!
//! [`Gpu`] is the passive device model. The simulation driver owns the
//! clock: it calls [`Gpu::submit`] when a task writes a channel
//! register, [`Gpu::try_dispatch`] when an engine may pick up work (the
//! returned finish time becomes a completion event), and
//! [`Gpu::complete_running`] when that event fires.
//!
//! Arbitration is weighted round-robin over channels with pending
//! requests — the behaviour the paper reverse-engineered and the very
//! mechanism that makes direct device access unfair: a channel with
//! larger requests receives proportionally more device time.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;

use neon_sim::{SimDuration, SimTime};

use crate::channel::Channel;
use crate::config::GpuConfig;
use crate::engine::{Engine, EngineClass, RunningRequest};
use crate::ids::{ChannelId, ContextId, DeviceId, RequestId, TaskId};
use crate::request::{Request, RequestKind, SubmitSpec};

/// Errors surfaced by the device interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GpuError {
    /// All device contexts are in use (the §6.3 DoS condition).
    OutOfContexts,
    /// All device channels are in use (the §6.3 DoS condition).
    OutOfChannels,
    /// The channel's ring buffer is full.
    RingFull(ChannelId),
    /// No such channel exists.
    NoSuchChannel(ChannelId),
    /// The channel has been destroyed.
    ChannelDestroyed(ChannelId),
    /// No such context exists.
    NoSuchContext(ContextId),
}

impl fmt::Display for GpuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GpuError::OutOfContexts => write!(f, "device out of contexts"),
            GpuError::OutOfChannels => write!(f, "device out of channels"),
            GpuError::RingFull(ch) => write!(f, "ring buffer full on {ch}"),
            GpuError::NoSuchChannel(ch) => write!(f, "no such channel {ch}"),
            GpuError::ChannelDestroyed(ch) => write!(f, "channel {ch} destroyed"),
            GpuError::NoSuchContext(ctx) => write!(f, "no such context {ctx}"),
        }
    }
}

impl std::error::Error for GpuError {}

/// Result of an engine picking up a request.
#[derive(Debug, Clone, Copy)]
pub struct DispatchOutcome {
    /// The request now executing.
    pub request: Request,
    /// When the engine finishes it ([`SimTime::MAX`] if unbounded). The
    /// driver schedules the completion event at this instant.
    pub finish_at: SimTime,
}

/// Result of a request completing.
#[derive(Debug, Clone, Copy)]
pub struct CompletedRequest {
    /// The request that finished.
    pub request: Request,
    /// The submitting task (convenience copy of `request.task`).
    pub task: TaskId,
    /// When execution proper began.
    pub started_at: SimTime,
    /// When it finished.
    pub finished_at: SimTime,
    /// Queueing delay between submission and execution start.
    pub wait: SimDuration,
    /// Device occupancy charged to the task (context switch + service).
    pub occupancy: SimDuration,
}

/// Result of tearing down a task's device state (exit or kill).
#[derive(Debug, Clone, Default)]
pub struct AbortSummary {
    /// Queued requests discarded.
    pub dropped_requests: usize,
    /// Channels destroyed.
    pub destroyed_channels: usize,
    /// Engines whose in-flight request was aborted; the driver must
    /// cancel the corresponding completion events and re-dispatch.
    pub aborted_engines: Vec<EngineClass>,
}

/// A round-robin rotation of channels with pending work. Channels
/// leave the rotation when their queue empties and re-enter on
/// submission.
#[derive(Debug, Default)]
struct Rotation {
    order: VecDeque<ChannelId>,
}

/// The modeled accelerator.
pub struct Gpu {
    id: DeviceId,
    config: GpuConfig,
    channels: Vec<Channel>,
    contexts: BTreeMap<ContextId, TaskId>,
    next_context: u32,
    live_contexts: usize,
    live_channels: usize,
    compute_engine: Engine,
    dma_engine: Engine,
    compute_rotation: Rotation,
    graphics_rotation: Rotation,
    dma_rotation: Rotation,
    next_request: u64,
    /// Graphics channels rest until this instant while compute work is
    /// pending (set after each graphics completion).
    graphics_blocked_until: SimTime,
    /// Ground-truth cumulative device occupancy per task (both engines).
    usage: BTreeMap<TaskId, SimDuration>,
    /// Total requests completed, for sanity accounting.
    completed_requests: u64,
}

impl fmt::Debug for Gpu {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Gpu")
            .field("live_contexts", &self.live_contexts)
            .field("live_channels", &self.live_channels)
            .field("completed_requests", &self.completed_requests)
            .finish_non_exhaustive()
    }
}

impl Gpu {
    /// Creates a device with the given configuration (device id 0; a
    /// single-device host).
    pub fn new(config: GpuConfig) -> Self {
        Gpu::with_id(DeviceId::new(0), config)
    }

    /// Creates a device with an explicit id, for multi-device hosts.
    pub fn with_id(id: DeviceId, config: GpuConfig) -> Self {
        Gpu {
            id,
            config,
            channels: Vec::new(),
            contexts: BTreeMap::new(),
            next_context: 0,
            live_contexts: 0,
            live_channels: 0,
            compute_engine: Engine::default(),
            dma_engine: Engine::default(),
            compute_rotation: Rotation::default(),
            graphics_rotation: Rotation::default(),
            dma_rotation: Rotation::default(),
            next_request: 0,
            graphics_blocked_until: SimTime::ZERO,
            usage: BTreeMap::new(),
            completed_requests: 0,
        }
    }

    /// The device configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.config
    }

    /// This device's id within its host.
    pub fn id(&self) -> DeviceId {
        self.id
    }

    // ------------------------------------------------------------------
    // Resource allocation
    // ------------------------------------------------------------------

    /// Allocates a GPU context for `task`.
    ///
    /// # Errors
    ///
    /// [`GpuError::OutOfContexts`] if the device context table is full —
    /// exactly the condition a channel-hoarding attacker triggers.
    pub fn create_context(&mut self, task: TaskId) -> Result<ContextId, GpuError> {
        if self.live_contexts >= self.config.total_contexts {
            return Err(GpuError::OutOfContexts);
        }
        let ctx = ContextId::new(self.next_context);
        self.next_context += 1;
        self.contexts.insert(ctx, task);
        self.live_contexts += 1;
        Ok(ctx)
    }

    /// Allocates a channel of the given kind inside `ctx`.
    ///
    /// # Errors
    ///
    /// [`GpuError::NoSuchContext`] if `ctx` is unknown;
    /// [`GpuError::OutOfChannels`] if the device channel table is full.
    pub fn create_channel(
        &mut self,
        ctx: ContextId,
        kind: RequestKind,
    ) -> Result<ChannelId, GpuError> {
        let &task = self
            .contexts
            .get(&ctx)
            .ok_or(GpuError::NoSuchContext(ctx))?;
        if self.live_channels >= self.config.total_channels {
            return Err(GpuError::OutOfChannels);
        }
        let id = ChannelId::from_index(self.channels.len());
        self.channels
            .push(Channel::new(id, ctx, task, kind, self.config.ring_capacity));
        self.live_channels += 1;
        Ok(id)
    }

    /// Number of contexts currently allocated.
    pub fn contexts_in_use(&self) -> usize {
        self.live_contexts
    }

    /// Number of channels currently allocated.
    pub fn channels_in_use(&self) -> usize {
        self.live_channels
    }

    /// Contexts still allocatable before [`GpuError::OutOfContexts`].
    pub fn free_contexts(&self) -> usize {
        self.config
            .total_contexts
            .saturating_sub(self.live_contexts)
    }

    /// Channels still allocatable before [`GpuError::OutOfChannels`].
    pub fn free_channels(&self) -> usize {
        self.config
            .total_channels
            .saturating_sub(self.live_channels)
    }

    // ------------------------------------------------------------------
    // Submission (channel-register write)
    // ------------------------------------------------------------------

    /// Submits a request on `ch` at `now`; models the user-space write
    /// to the channel register. Returns the request id and its
    /// per-channel reference number.
    ///
    /// # Errors
    ///
    /// [`GpuError::NoSuchChannel`], [`GpuError::ChannelDestroyed`], or
    /// [`GpuError::RingFull`].
    pub fn submit(
        &mut self,
        now: SimTime,
        ch: ChannelId,
        spec: SubmitSpec,
    ) -> Result<(RequestId, u64), GpuError> {
        let channel = self
            .channels
            .get_mut(ch.index())
            .ok_or(GpuError::NoSuchChannel(ch))?;
        if !channel.is_active() {
            return Err(GpuError::ChannelDestroyed(ch));
        }
        if channel.is_full() {
            return Err(GpuError::RingFull(ch));
        }
        let id = RequestId::new(self.next_request);
        self.next_request += 1;
        let task = channel.task();
        let context = channel.context();
        let was_empty = channel.is_quiesced();
        let reference = channel.enqueue(now, |reference| Request {
            id,
            task,
            context,
            channel: ch,
            kind: spec.kind,
            service: spec.service,
            blocking: spec.blocking,
            submitted_at: now,
            reference,
        });
        if was_empty && channel.is_enabled() {
            let kind = channel.kind();
            self.rotation_for(kind).order.push_back(ch);
        }
        Ok((id, reference))
    }

    // ------------------------------------------------------------------
    // Execution
    // ------------------------------------------------------------------

    /// If `engine` is idle and work is pending, starts the next request
    /// per weighted round-robin and returns its completion time.
    pub fn try_dispatch(&mut self, now: SimTime, engine: EngineClass) -> Option<DispatchOutcome> {
        if !self.engine(engine).is_idle() {
            return None;
        }
        let ch = self.pick_next_channel(now, engine)?;
        let request = self.channels[ch.index()]
            .pop_front()
            // lint: allow(unchecked-unwrap) — channels enter the submit
            // rotation only while they hold queued work
            .expect("rotation pointed at empty channel");
        let switch = self.config.context_switch;
        let finish_at = self.engine_mut(engine).start(now, request, switch);
        Some(DispatchOutcome { request, finish_at })
    }

    /// Completes the in-flight request on `engine` at `now`: writes the
    /// channel's reference counter and charges the task's usage.
    ///
    /// # Panics
    ///
    /// Panics if the engine is idle (a stale completion event — driver
    /// bugs, not runtime conditions).
    pub fn complete_running(&mut self, now: SimTime, engine: EngineClass) -> CompletedRequest {
        let run = self.engine_mut(engine).finish(now);
        let request = run.request;
        let channel = &mut self.channels[request.channel.index()];
        if channel.is_active() {
            channel.record_completion(request.reference);
        }
        let occupancy = now.saturating_duration_since(run.dispatched_at);
        *self.usage.entry(request.task).or_default() += occupancy;
        self.completed_requests += 1;
        if request.kind == RequestKind::Graphics {
            self.graphics_blocked_until = now + self.config.graphics_cooldown;
        }
        CompletedRequest {
            request,
            task: request.task,
            started_at: run.started_at,
            finished_at: now,
            wait: run
                .started_at
                .saturating_duration_since(request.submitted_at),
            occupancy,
        }
    }

    /// The request currently running on `engine`, if any.
    pub fn running(&self, engine: EngineClass) -> Option<&RunningRequest> {
        self.engine(engine).running()
    }

    /// Masks a channel on or off from engine arbitration (OS-level
    /// suspension, the §6.2 preemption substrate). Re-enabling a
    /// channel with queued work puts it back into rotation.
    pub fn set_channel_enabled(&mut self, ch: ChannelId, enabled: bool) {
        let Some(channel) = self.channels.get_mut(ch.index()) else {
            return;
        };
        if channel.is_enabled() == enabled {
            return;
        }
        channel.set_enabled(enabled);
        let kind = channel.kind();
        let has_work = !channel.is_quiesced();
        let rot = self.rotation_for(kind);
        if enabled {
            if has_work && !rot.order.contains(&ch) {
                rot.order.push_back(ch);
            }
        } else if let Some(pos) = rot.order.iter().position(|c| *c == ch) {
            rot.order.remove(pos);
        }
    }

    /// Preempts the request running on `engine` (§6.2 hardware
    /// preemption): execution stops, the elapsed time is charged to
    /// the task, and the remainder is requeued at the head of its
    /// channel with its reference number intact. Returns the preempted
    /// request, or `None` if the engine was idle.
    pub fn preempt_running(&mut self, now: SimTime, engine: EngineClass) -> Option<Request> {
        let run = self.engine_mut(engine).abort(now)?;
        let elapsed = now.saturating_duration_since(run.dispatched_at);
        *self.usage.entry(run.request.task).or_default() += elapsed;
        let consumed = now.saturating_duration_since(run.started_at);
        let mut remainder = run.request;
        if remainder.service != SimDuration::MAX {
            remainder.service = remainder.service.saturating_sub(consumed);
        }
        let channel = &mut self.channels[remainder.channel.index()];
        if channel.is_active() {
            let was_empty = channel.is_quiesced();
            channel.requeue_front(remainder);
            if was_empty && channel.is_enabled() {
                let kind = channel.kind();
                let ch = remainder.channel;
                let rot = self.rotation_for(kind);
                if !rot.order.contains(&ch) {
                    rot.order.push_back(ch);
                }
            }
        }
        Some(remainder)
    }

    /// Tears down all device state owned by `task`: queued requests are
    /// dropped, channels destroyed, in-flight requests aborted. Models
    /// the driver's exit protocol after a process kill.
    pub fn destroy_task(&mut self, now: SimTime, task: TaskId) -> AbortSummary {
        let mut summary = AbortSummary::default();
        let owned: Vec<ChannelId> = self
            .channels
            .iter()
            .filter(|c| c.task() == task && c.is_active())
            .map(|c| c.id())
            .collect();
        for ch in &owned {
            summary.dropped_requests += self.channels[ch.index()].destroy();
            summary.destroyed_channels += 1;
            self.live_channels -= 1;
            for rot in [
                &mut self.compute_rotation,
                &mut self.graphics_rotation,
                &mut self.dma_rotation,
            ] {
                if let Some(pos) = rot.order.iter().position(|c| c == ch) {
                    rot.order.remove(pos);
                }
            }
        }
        let owned_contexts: Vec<ContextId> = self
            .contexts
            .iter()
            .filter(|&(_, &t)| t == task)
            .map(|(&c, _)| c)
            .collect();
        for ctx in owned_contexts {
            self.contexts.remove(&ctx);
            self.live_contexts -= 1;
        }
        for class in EngineClass::ALL {
            let aborted_occupancy = {
                let engine = self.engine(class);
                match engine.running() {
                    Some(run) if run.request.task == task => {
                        Some(now.saturating_duration_since(run.dispatched_at))
                    }
                    _ => None,
                }
            };
            if let Some(occupancy) = aborted_occupancy {
                self.engine_mut(class).abort(now);
                *self.usage.entry(task).or_default() += occupancy;
                summary.aborted_engines.push(class);
            }
        }
        summary
    }

    // ------------------------------------------------------------------
    // Observation
    // ------------------------------------------------------------------

    /// Read access to a channel's shared-memory state.
    pub fn channel(&self, ch: ChannelId) -> Option<&Channel> {
        self.channels.get(ch.index())
    }

    /// All channels ever created (including destroyed ones).
    pub fn channels(&self) -> impl Iterator<Item = &Channel> {
        self.channels.iter()
    }

    /// Active channels belonging to `task`.
    pub fn channels_of(&self, task: TaskId) -> impl Iterator<Item = &Channel> {
        self.channels
            .iter()
            .filter(move |c| c.task() == task && c.is_active())
    }

    /// `true` if nothing is queued on an *enabled* channel or running
    /// on an engine. Work parked on OS-disabled (suspended) channels
    /// does not block a barrier: it cannot be dispatched.
    pub fn is_fully_drained(&self) -> bool {
        self.compute_engine.is_idle()
            && self.dma_engine.is_idle()
            && self
                .channels
                .iter()
                .all(|c| c.is_quiesced() || !c.is_enabled())
    }

    /// `true` if every request submitted on `task`'s channels has
    /// completed and none is running — the per-task drain condition the
    /// kernel checks via reference counters.
    pub fn task_drained(&self, task: TaskId) -> bool {
        let queued_or_unfinished = self
            .channels_of(task)
            .any(|c| !c.drained() || !c.is_quiesced());
        let running = EngineClass::ALL.iter().any(|&e| {
            self.engine(e)
                .running()
                .is_some_and(|r| r.request.task == task)
        });
        !queued_or_unfinished && !running
    }

    /// Ground-truth cumulative occupancy charged to `task`.
    pub fn usage_of(&self, task: TaskId) -> SimDuration {
        self.usage.get(&task).copied().unwrap_or(SimDuration::ZERO)
    }

    /// Ground-truth busy time of an engine.
    pub fn engine_busy(&self, engine: EngineClass) -> SimDuration {
        self.engine(engine).busy()
    }

    /// Total requests completed since device creation.
    pub fn completed_requests(&self) -> u64 {
        self.completed_requests
    }

    /// Total requests queued across all channels (not counting running).
    pub fn queued_requests(&self) -> usize {
        self.channels.iter().map(|c| c.queued()).sum()
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn engine(&self, class: EngineClass) -> &Engine {
        match class {
            EngineClass::Compute => &self.compute_engine,
            EngineClass::Dma => &self.dma_engine,
        }
    }

    fn engine_mut(&mut self, class: EngineClass) -> &mut Engine {
        match class {
            EngineClass::Compute => &mut self.compute_engine,
            EngineClass::Dma => &mut self.dma_engine,
        }
    }

    fn rotation_for(&mut self, kind: RequestKind) -> &mut Rotation {
        match kind {
            RequestKind::Compute => &mut self.compute_rotation,
            RequestKind::Graphics => &mut self.graphics_rotation,
            RequestKind::Dma => &mut self.dma_rotation,
        }
    }

    /// Pops the head of a rotation for service, keeping the channel in
    /// the rotation (at the back) if more requests remain queued.
    fn take_head(rot: &mut Rotation, channels: &[Channel]) -> Option<ChannelId> {
        while let Some(&head) = rot.order.front() {
            let queued = channels[head.index()].queued();
            if queued == 0 {
                rot.order.pop_front();
                continue;
            }
            rot.order.pop_front();
            if queued > 1 {
                rot.order.push_back(head);
            }
            return Some(head);
        }
        None
    }

    /// Next channel to service.
    ///
    /// The compute engine round-robins among compute channels; a
    /// graphics channel is serviced when no compute work is pending or
    /// once the post-graphics cooldown has elapsed
    /// ([`GpuConfig::graphics_cooldown`]). This reproduces the §5.3
    /// observation that graphics requests complete at a fraction of a
    /// small-request compute co-runner's rate, with the disparity
    /// vanishing for large co-runner requests.
    fn pick_next_channel(&mut self, now: SimTime, class: EngineClass) -> Option<ChannelId> {
        if class == EngineClass::Dma {
            return Self::take_head(&mut self.dma_rotation, &self.channels);
        }
        let compute_pending = self
            .compute_rotation
            .order
            .iter()
            .any(|ch| !self.channels[ch.index()].is_quiesced());
        let graphics_due = !compute_pending || now >= self.graphics_blocked_until;
        if graphics_due {
            if let Some(ch) = Self::take_head(&mut self.graphics_rotation, &self.channels) {
                return Some(ch);
            }
        }
        if let Some(ch) = Self::take_head(&mut self.compute_rotation, &self.channels) {
            return Some(ch);
        }
        Self::take_head(&mut self.graphics_rotation, &self.channels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(v: u64) -> SimDuration {
        SimDuration::from_micros(v)
    }

    fn setup_two_tasks() -> (Gpu, ChannelId, ChannelId) {
        let mut gpu = Gpu::new(GpuConfig::default());
        let t0 = TaskId::new(0);
        let t1 = TaskId::new(1);
        let c0 = gpu.create_context(t0).unwrap();
        let c1 = gpu.create_context(t1).unwrap();
        let ch0 = gpu.create_channel(c0, RequestKind::Compute).unwrap();
        let ch1 = gpu.create_channel(c1, RequestKind::Compute).unwrap();
        (gpu, ch0, ch1)
    }

    /// Drives the compute engine until nothing is pending; returns the
    /// completion order as (task, finished_at).
    fn drain_compute(gpu: &mut Gpu, mut now: SimTime) -> Vec<(TaskId, SimTime)> {
        let mut done = Vec::new();
        while let Some(d) = gpu.try_dispatch(now, EngineClass::Compute) {
            let completed = gpu.complete_running(d.finish_at, EngineClass::Compute);
            now = d.finish_at;
            done.push((completed.task, completed.finished_at));
        }
        done
    }

    #[test]
    fn device_identity_and_free_capacity_track_allocation() {
        let mut gpu = Gpu::with_id(
            DeviceId::new(3),
            GpuConfig {
                total_contexts: 2,
                total_channels: 4,
                ..GpuConfig::default()
            },
        );
        assert_eq!(gpu.id(), DeviceId::new(3));
        assert_eq!(Gpu::new(GpuConfig::default()).id(), DeviceId::new(0));
        assert_eq!((gpu.free_contexts(), gpu.free_channels()), (2, 4));
        let ctx = gpu.create_context(TaskId::new(0)).unwrap();
        gpu.create_channel(ctx, RequestKind::Compute).unwrap();
        assert_eq!((gpu.free_contexts(), gpu.free_channels()), (1, 3));
        gpu.destroy_task(SimTime::ZERO, TaskId::new(0));
        assert_eq!((gpu.free_contexts(), gpu.free_channels()), (2, 4));
    }

    #[test]
    fn context_and_channel_limits_enforced() {
        let mut gpu = Gpu::new(GpuConfig {
            total_contexts: 2,
            total_channels: 3,
            ..GpuConfig::default()
        });
        let t = TaskId::new(0);
        let c0 = gpu.create_context(t).unwrap();
        let _c1 = gpu.create_context(t).unwrap();
        assert_eq!(gpu.create_context(t), Err(GpuError::OutOfContexts));

        gpu.create_channel(c0, RequestKind::Compute).unwrap();
        gpu.create_channel(c0, RequestKind::Dma).unwrap();
        gpu.create_channel(c0, RequestKind::Compute).unwrap();
        assert_eq!(
            gpu.create_channel(c0, RequestKind::Compute),
            Err(GpuError::OutOfChannels)
        );
        assert_eq!(gpu.channels_in_use(), 3);
    }

    #[test]
    fn submit_assigns_monotonic_references() {
        let (mut gpu, ch0, _) = setup_two_tasks();
        let (_, r1) = gpu
            .submit(SimTime::ZERO, ch0, SubmitSpec::compute(us(10)))
            .unwrap();
        let (_, r2) = gpu
            .submit(SimTime::ZERO, ch0, SubmitSpec::compute(us(10)))
            .unwrap();
        assert_eq!((r1, r2), (1, 2));
    }

    #[test]
    fn round_robin_alternates_between_equal_channels() {
        let (mut gpu, ch0, ch1) = setup_two_tasks();
        for _ in 0..3 {
            gpu.submit(SimTime::ZERO, ch0, SubmitSpec::compute(us(10)))
                .unwrap();
            gpu.submit(SimTime::ZERO, ch1, SubmitSpec::compute(us(10)))
                .unwrap();
        }
        let order: Vec<u32> = drain_compute(&mut gpu, SimTime::ZERO)
            .iter()
            .map(|(t, _)| t.raw())
            .collect();
        // Plain round-robin among compute channels.
        assert_eq!(order, vec![0, 1, 0, 1, 0, 1]);
    }

    #[test]
    fn larger_requests_get_proportionally_more_time() {
        // The direct-access unfairness at the heart of the paper: equal
        // request *counts* per rotation mean unequal device *time*.
        let (mut gpu, ch0, ch1) = setup_two_tasks();
        for _ in 0..4 {
            gpu.submit(SimTime::ZERO, ch0, SubmitSpec::compute(us(100)))
                .unwrap();
            gpu.submit(SimTime::ZERO, ch1, SubmitSpec::compute(us(10)))
                .unwrap();
        }
        drain_compute(&mut gpu, SimTime::ZERO);
        let u0 = gpu.usage_of(TaskId::new(0));
        let u1 = gpu.usage_of(TaskId::new(1));
        let ratio = u0.ratio(u1);
        assert!(
            ratio > 5.0,
            "large-request task should dominate, got ratio {ratio:.2}"
        );
    }

    #[test]
    fn graphics_rests_for_the_cooldown_between_services() {
        let mut gpu = Gpu::new(GpuConfig::default());
        let t0 = TaskId::new(0);
        let t1 = TaskId::new(1);
        let c0 = gpu.create_context(t0).unwrap();
        let c1 = gpu.create_context(t1).unwrap();
        let compute = gpu.create_channel(c0, RequestKind::Compute).unwrap();
        let graphics = gpu.create_channel(c1, RequestKind::Graphics).unwrap();
        for _ in 0..12 {
            gpu.submit(SimTime::ZERO, compute, SubmitSpec::compute(us(10)))
                .unwrap();
        }
        for _ in 0..3 {
            gpu.submit(
                SimTime::ZERO,
                graphics,
                SubmitSpec::graphics(us(10)).nonblocking(),
            )
            .unwrap();
        }
        let done = drain_compute(&mut gpu, SimTime::ZERO);
        assert_eq!(done.len(), 15, "all requests complete (no starvation)");
        // Between two graphics services the engine runs ≥50µs of
        // compute (the cooldown): with 10µs compute requests, at least
        // five compute completions separate consecutive graphics ones.
        let graphics_positions: Vec<usize> = done
            .iter()
            .enumerate()
            .filter(|(_, (t, _))| *t == t1)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(graphics_positions.len(), 3);
        for pair in graphics_positions.windows(2) {
            assert!(
                pair[1] - pair[0] >= 5,
                "graphics served too often: positions {graphics_positions:?}"
            );
        }
    }

    #[test]
    fn graphics_served_immediately_when_no_compute_pending() {
        let mut gpu = Gpu::new(GpuConfig::default());
        let ctx = gpu.create_context(TaskId::new(0)).unwrap();
        let graphics = gpu.create_channel(ctx, RequestKind::Graphics).unwrap();
        gpu.submit(
            SimTime::ZERO,
            graphics,
            SubmitSpec::graphics(us(10)).nonblocking(),
        )
        .unwrap();
        let d = gpu.try_dispatch(SimTime::ZERO, EngineClass::Compute);
        assert!(d.is_some(), "idle device must serve graphics at once");
    }

    #[test]
    fn dma_overlaps_compute() {
        let mut gpu = Gpu::new(GpuConfig::default());
        let t = TaskId::new(0);
        let ctx = gpu.create_context(t).unwrap();
        let cch = gpu.create_channel(ctx, RequestKind::Compute).unwrap();
        let dch = gpu.create_channel(ctx, RequestKind::Dma).unwrap();
        gpu.submit(SimTime::ZERO, cch, SubmitSpec::compute(us(100)))
            .unwrap();
        gpu.submit(SimTime::ZERO, dch, SubmitSpec::dma(us(100)))
            .unwrap();
        let dc = gpu
            .try_dispatch(SimTime::ZERO, EngineClass::Compute)
            .unwrap();
        let dd = gpu.try_dispatch(SimTime::ZERO, EngineClass::Dma).unwrap();
        // Both engines run concurrently.
        assert!(gpu.running(EngineClass::Compute).is_some());
        assert!(gpu.running(EngineClass::Dma).is_some());
        gpu.complete_running(dc.finish_at, EngineClass::Compute);
        gpu.complete_running(dd.finish_at, EngineClass::Dma);
        assert!(gpu.is_fully_drained());
    }

    #[test]
    fn completion_updates_reference_counter_and_usage() {
        let (mut gpu, ch0, _) = setup_two_tasks();
        gpu.submit(SimTime::ZERO, ch0, SubmitSpec::compute(us(50)))
            .unwrap();
        let d = gpu
            .try_dispatch(SimTime::ZERO, EngineClass::Compute)
            .unwrap();
        let done = gpu.complete_running(d.finish_at, EngineClass::Compute);
        assert_eq!(gpu.channel(ch0).unwrap().completed_reference(), 1);
        // Occupancy = 4µs context switch + 50µs service.
        assert_eq!(done.occupancy, us(54));
        assert_eq!(gpu.usage_of(TaskId::new(0)), us(54));
        assert!(gpu.task_drained(TaskId::new(0)));
    }

    #[test]
    fn wait_time_measures_queue_delay() {
        let (mut gpu, ch0, _) = setup_two_tasks();
        gpu.submit(SimTime::ZERO, ch0, SubmitSpec::compute(us(50)))
            .unwrap();
        gpu.submit(SimTime::ZERO, ch0, SubmitSpec::compute(us(50)))
            .unwrap();
        let d1 = gpu
            .try_dispatch(SimTime::ZERO, EngineClass::Compute)
            .unwrap();
        let c1 = gpu.complete_running(d1.finish_at, EngineClass::Compute);
        assert_eq!(c1.wait, us(4), "first request waits only for the switch");
        let d2 = gpu
            .try_dispatch(d1.finish_at, EngineClass::Compute)
            .unwrap();
        let c2 = gpu.complete_running(d2.finish_at, EngineClass::Compute);
        assert_eq!(c2.wait, us(54), "second request waited behind the first");
    }

    #[test]
    fn destroy_task_drops_work_and_aborts_running() {
        let (mut gpu, ch0, ch1) = setup_two_tasks();
        gpu.submit(SimTime::ZERO, ch0, SubmitSpec::infinite_loop())
            .unwrap();
        gpu.submit(SimTime::ZERO, ch0, SubmitSpec::compute(us(10)))
            .unwrap();
        gpu.submit(SimTime::ZERO, ch1, SubmitSpec::compute(us(10)))
            .unwrap();
        let d = gpu
            .try_dispatch(SimTime::ZERO, EngineClass::Compute)
            .unwrap();
        assert_eq!(d.finish_at, SimTime::MAX);

        let summary = gpu.destroy_task(SimTime::from_micros(500), TaskId::new(0));
        assert_eq!(summary.dropped_requests, 1);
        assert_eq!(summary.destroyed_channels, 1);
        assert_eq!(summary.aborted_engines, vec![EngineClass::Compute]);
        // The other task's work is untouched and dispatchable.
        let d2 = gpu
            .try_dispatch(SimTime::from_micros(500), EngineClass::Compute)
            .unwrap();
        assert_eq!(d2.request.task, TaskId::new(1));
        // Killed task's usage includes the partial execution.
        assert_eq!(gpu.usage_of(TaskId::new(0)), us(500));
    }

    #[test]
    fn submit_on_destroyed_channel_errors() {
        let (mut gpu, ch0, _) = setup_two_tasks();
        gpu.destroy_task(SimTime::ZERO, TaskId::new(0));
        assert_eq!(
            gpu.submit(SimTime::ZERO, ch0, SubmitSpec::compute(us(1))),
            Err(GpuError::ChannelDestroyed(ch0))
        );
    }

    #[test]
    fn ring_full_reported() {
        let mut gpu = Gpu::new(GpuConfig {
            ring_capacity: 2,
            ..GpuConfig::default()
        });
        let ctx = gpu.create_context(TaskId::new(0)).unwrap();
        let ch = gpu.create_channel(ctx, RequestKind::Compute).unwrap();
        gpu.submit(SimTime::ZERO, ch, SubmitSpec::compute(us(1)))
            .unwrap();
        gpu.submit(SimTime::ZERO, ch, SubmitSpec::compute(us(1)))
            .unwrap();
        assert_eq!(
            gpu.submit(SimTime::ZERO, ch, SubmitSpec::compute(us(1))),
            Err(GpuError::RingFull(ch))
        );
    }

    #[test]
    fn usage_sums_to_engine_busy() {
        let (mut gpu, ch0, ch1) = setup_two_tasks();
        for i in 0..5 {
            gpu.submit(SimTime::ZERO, ch0, SubmitSpec::compute(us(10 + i)))
                .unwrap();
            gpu.submit(SimTime::ZERO, ch1, SubmitSpec::compute(us(20 + i)))
                .unwrap();
        }
        drain_compute(&mut gpu, SimTime::ZERO);
        let total = gpu.usage_of(TaskId::new(0)) + gpu.usage_of(TaskId::new(1));
        assert_eq!(total, gpu.engine_busy(EngineClass::Compute));
    }

    #[test]
    fn preempt_requeues_remainder_with_same_reference() {
        let (mut gpu, ch0, _) = setup_two_tasks();
        gpu.submit(SimTime::ZERO, ch0, SubmitSpec::compute(us(100)))
            .unwrap();
        let d = gpu
            .try_dispatch(SimTime::ZERO, EngineClass::Compute)
            .unwrap();
        assert_eq!(d.request.reference, 1);
        // Preempt 30µs in (4µs switch + 26µs of execution).
        let remainder = gpu
            .preempt_running(SimTime::from_micros(30), EngineClass::Compute)
            .unwrap();
        assert_eq!(remainder.reference, 1, "reference must be preserved");
        assert_eq!(
            remainder.service,
            us(74),
            "remaining service after 26µs run"
        );
        // The channel still owes the completion.
        assert!(!gpu.channel(ch0).unwrap().drained());
        // Re-dispatch picks the remainder back up and completes it.
        let d2 = gpu
            .try_dispatch(SimTime::from_micros(30), EngineClass::Compute)
            .unwrap();
        assert_eq!(d2.request.reference, 1);
        gpu.complete_running(d2.finish_at, EngineClass::Compute);
        assert!(gpu.channel(ch0).unwrap().drained());
        // Usage counts both the preempted slice and the rerun.
        assert!(gpu.usage_of(TaskId::new(0)) >= us(100));
    }

    #[test]
    fn preempting_an_infinite_request_frees_the_engine() {
        let (mut gpu, ch0, ch1) = setup_two_tasks();
        gpu.submit(SimTime::ZERO, ch0, SubmitSpec::infinite_loop())
            .unwrap();
        gpu.submit(SimTime::ZERO, ch1, SubmitSpec::compute(us(10)))
            .unwrap();
        gpu.try_dispatch(SimTime::ZERO, EngineClass::Compute)
            .unwrap();
        let remainder = gpu
            .preempt_running(SimTime::from_micros(500), EngineClass::Compute)
            .unwrap();
        assert!(
            remainder.is_unbounded(),
            "infinite remainder stays infinite"
        );
        // Mask the offender; the victim's work is dispatched next.
        gpu.set_channel_enabled(ch0, false);
        let d = gpu
            .try_dispatch(SimTime::from_micros(500), EngineClass::Compute)
            .unwrap();
        assert_eq!(d.request.task, TaskId::new(1));
    }

    #[test]
    fn disabled_channels_are_skipped_and_resume_on_enable() {
        let (mut gpu, ch0, _) = setup_two_tasks();
        gpu.submit(SimTime::ZERO, ch0, SubmitSpec::compute(us(10)))
            .unwrap();
        gpu.set_channel_enabled(ch0, false);
        assert!(gpu
            .try_dispatch(SimTime::ZERO, EngineClass::Compute)
            .is_none());
        // A disabled channel's backlog does not block a barrier drain.
        assert!(gpu.is_fully_drained());
        gpu.set_channel_enabled(ch0, true);
        assert!(!gpu.is_fully_drained());
        assert!(gpu
            .try_dispatch(SimTime::ZERO, EngineClass::Compute)
            .is_some());
    }

    #[test]
    fn submissions_on_disabled_channels_queue_without_dispatch() {
        let (mut gpu, ch0, _) = setup_two_tasks();
        gpu.set_channel_enabled(ch0, false);
        gpu.submit(SimTime::ZERO, ch0, SubmitSpec::compute(us(10)))
            .unwrap();
        assert!(gpu
            .try_dispatch(SimTime::ZERO, EngineClass::Compute)
            .is_none());
        assert_eq!(gpu.channel(ch0).unwrap().queued(), 1);
    }

    #[test]
    fn dispatch_on_busy_engine_returns_none() {
        let (mut gpu, ch0, _) = setup_two_tasks();
        gpu.submit(SimTime::ZERO, ch0, SubmitSpec::compute(us(10)))
            .unwrap();
        gpu.submit(SimTime::ZERO, ch0, SubmitSpec::compute(us(10)))
            .unwrap();
        assert!(gpu
            .try_dispatch(SimTime::ZERO, EngineClass::Compute)
            .is_some());
        assert!(gpu
            .try_dispatch(SimTime::ZERO, EngineClass::Compute)
            .is_none());
    }
}
