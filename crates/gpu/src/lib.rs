//! # neon-gpu
//!
//! A discrete-event model of a fast computational accelerator with a
//! *direct-mapped* user-space interface, in the style of the Nvidia GPUs
//! studied by the paper (Kepler/Fermi/Tesla generations).
//!
//! The model reproduces exactly the device behaviours the paper's
//! schedulers observe and depend on:
//!
//! - **Channels** ([`channel::Channel`]): per-task request queues backed
//!   by a ring buffer, submitted to by writing a *channel register* (the
//!   page the OS protects to intercept submissions).
//! - **Reference counters**: the device writes a per-channel counter on
//!   each request completion; the kernel's polling thread reads it to
//!   detect completion without interrupts.
//! - **Weighted round-robin arbitration** ([`device::Gpu`]): the compute
//!   engine cycles among channels with pending requests. Compute channels
//!   receive a higher arbitration weight than graphics channels,
//!   reproducing the paper's observation that glxgears requests complete
//!   at roughly one third the rate of an OpenCL co-runner.
//! - **Context-switch cost**: charged when consecutive requests come from
//!   different GPU contexts; the source of sub-1.0 direct-access
//!   concurrency efficiency for small requests.
//! - **A separate DMA engine**: DMA and compute overlap, the source of
//!   above-1.0 concurrency efficiency.
//! - **Bounded channel/context resources**: the §6.3 denial-of-service
//!   scenario (48 contexts exhaust the device) and the C/D allocation
//!   policy that prevents it.
//!
//! The device is passive: the simulation driver (in `neon-core`) calls
//! [`device::Gpu::submit`], [`device::Gpu::try_dispatch`] and
//! [`device::Gpu::complete_running`] and owns the event clock.
//!
//! # Example
//!
//! ```
//! use neon_gpu::{Gpu, GpuConfig, RequestKind, SubmitSpec, TaskId};
//! use neon_sim::{SimDuration, SimTime};
//!
//! let mut gpu = Gpu::new(GpuConfig::default());
//! let task = TaskId::new(0);
//! let ctx = gpu.create_context(task)?;
//! let ch = gpu.create_channel(ctx, RequestKind::Compute)?;
//!
//! let now = SimTime::ZERO;
//! gpu.submit(now, ch, SubmitSpec::compute(SimDuration::from_micros(50)))?;
//! let dispatch = gpu.try_dispatch(now, neon_gpu::EngineClass::Compute).unwrap();
//! let done = gpu.complete_running(dispatch.finish_at, neon_gpu::EngineClass::Compute);
//! assert_eq!(done.task, task);
//! assert_eq!(gpu.channel(ch).unwrap().completed_reference(), 1);
//! # Ok::<(), neon_gpu::GpuError>(())
//! ```

pub mod channel;
pub mod config;
pub mod device;
pub mod engine;
pub mod ids;
pub mod request;
pub mod topology;

pub use channel::{Channel, ChannelState};
pub use config::GpuConfig;
pub use device::{AbortSummary, CompletedRequest, DispatchOutcome, Gpu, GpuError};
pub use engine::EngineClass;
pub use ids::{ChannelId, ContextId, DeviceId, RequestId, TaskId};
pub use request::{Request, RequestKind, SubmitSpec};
pub use topology::{ClusterInterconnect, DeviceSlotSpec, InterconnectParams, LinkTier, Topology};
