//! GPU channels: request queues with a direct-mapped submission
//! interface.
//!
//! A channel bundles the three virtual memory areas the paper's
//! initialization phase identifies — command buffer, ring buffer, and
//! channel register — into one model object. Submission is a write to
//! the channel register; completion is a device write to the channel's
//! reference counter. Requests on one channel are processed strictly in
//! order (the property NEON's post–re-engagement status update relies
//! on).

use std::collections::VecDeque;

use neon_sim::SimTime;

use crate::ids::{ChannelId, ContextId, TaskId};
use crate::request::{Request, RequestKind};

/// Lifecycle state of a channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelState {
    /// Mapped and usable.
    Active,
    /// Torn down (task exit or kill); retained for accounting.
    Destroyed,
}

/// One GPU request queue and its bookkeeping.
#[derive(Debug, Clone)]
pub struct Channel {
    id: ChannelId,
    context: ContextId,
    task: TaskId,
    kind: RequestKind,
    state: ChannelState,
    /// Channels can be masked off from arbitration by the OS (used by
    /// preemption support, §6.2): a disabled channel keeps its queued
    /// requests but the engine will not dispatch from it.
    enabled: bool,
    ring: VecDeque<Request>,
    ring_capacity: usize,
    /// Reference number assigned to the next submitted request.
    next_reference: u64,
    /// Value last written by the device on completion ("the reference
    /// counter" the kernel polls).
    completed_reference: u64,
    /// Reference number of the most recently submitted request; what the
    /// kernel discovers by scanning the command queue on re-engagement.
    last_submitted_reference: u64,
    /// Completion count, for activity detection across intervals.
    completions: u64,
    /// Time of the most recent submission (for activity detection).
    last_submission_at: Option<SimTime>,
}

impl Channel {
    /// Creates an active, empty channel.
    pub fn new(
        id: ChannelId,
        context: ContextId,
        task: TaskId,
        kind: RequestKind,
        ring_capacity: usize,
    ) -> Self {
        assert!(ring_capacity > 0, "ring capacity must be positive");
        Channel {
            id,
            context,
            task,
            kind,
            state: ChannelState::Active,
            enabled: true,
            ring: VecDeque::new(),
            ring_capacity,
            next_reference: 1,
            completed_reference: 0,
            last_submitted_reference: 0,
            completions: 0,
            last_submission_at: None,
        }
    }

    /// The channel id.
    pub fn id(&self) -> ChannelId {
        self.id
    }

    /// The owning context.
    pub fn context(&self) -> ContextId {
        self.context
    }

    /// The owning task.
    pub fn task(&self) -> TaskId {
        self.task
    }

    /// The work class this channel carries.
    pub fn kind(&self) -> RequestKind {
        self.kind
    }

    /// Lifecycle state.
    pub fn state(&self) -> ChannelState {
        self.state
    }

    /// `true` if the channel is usable.
    pub fn is_active(&self) -> bool {
        self.state == ChannelState::Active
    }

    /// `true` if the engine may dispatch from this channel.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Masks the channel on or off from engine arbitration.
    pub(crate) fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Returns a preempted request to the head of the queue (hardware
    /// preemption support, §6.2). The request keeps its reference
    /// number: it has not completed.
    pub(crate) fn requeue_front(&mut self, request: Request) {
        debug_assert!(request.reference <= self.last_submitted_reference);
        self.ring.push_front(request);
    }

    /// Number of queued (not yet dispatched) requests.
    pub fn queued(&self) -> usize {
        self.ring.len()
    }

    /// `true` if the ring buffer cannot accept another request.
    pub fn is_full(&self) -> bool {
        self.ring.len() >= self.ring_capacity
    }

    /// `true` if no requests are queued.
    pub fn is_quiesced(&self) -> bool {
        self.ring.is_empty()
    }

    /// The reference counter value (written by the device on each
    /// completion). This models the shared-memory word the kernel's
    /// polling thread reads.
    pub fn completed_reference(&self) -> u64 {
        self.completed_reference
    }

    /// The reference number of the last submitted request — what NEON
    /// finds by traversing the in-memory command queue structures.
    pub fn last_submitted_reference(&self) -> u64 {
        self.last_submitted_reference
    }

    /// Total completions on this channel.
    pub fn completions(&self) -> u64 {
        self.completions
    }

    /// Time of the most recent submission, if any.
    pub fn last_submission_at(&self) -> Option<SimTime> {
        self.last_submission_at
    }

    /// `true` if every submitted request has completed (the drain
    /// condition the kernel checks via reference counters).
    pub fn drained(&self) -> bool {
        self.completed_reference == self.last_submitted_reference
    }

    /// Assigns the next reference number and enqueues the request body
    /// built by `build`. Returns the assigned reference.
    ///
    /// # Panics
    ///
    /// Panics if the channel is destroyed or the ring is full (callers
    /// check [`Channel::is_full`] first; the task models bound their
    /// pipeline depth below the ring capacity).
    pub(crate) fn enqueue(&mut self, now: SimTime, build: impl FnOnce(u64) -> Request) -> u64 {
        assert!(self.is_active(), "submit on destroyed channel {}", self.id);
        assert!(!self.is_full(), "ring overflow on channel {}", self.id);
        let reference = self.next_reference;
        self.next_reference += 1;
        self.last_submitted_reference = reference;
        self.last_submission_at = Some(now);
        self.ring.push_back(build(reference));
        reference
    }

    /// Removes the head-of-line request for dispatch.
    pub(crate) fn pop_front(&mut self) -> Option<Request> {
        self.ring.pop_front()
    }

    /// Peeks the head-of-line request (e.g. for aging decisions).
    pub fn front(&self) -> Option<&Request> {
        self.ring.front()
    }

    /// Records a completion: the device writes `reference` to the
    /// channel's reference counter.
    pub(crate) fn record_completion(&mut self, reference: u64) {
        debug_assert!(
            reference > self.completed_reference,
            "in-order completion violated on {}",
            self.id
        );
        self.completed_reference = reference;
        self.completions += 1;
    }

    /// Tears the channel down, dropping queued requests. Returns the
    /// number of requests discarded.
    pub(crate) fn destroy(&mut self) -> usize {
        self.state = ChannelState::Destroyed;
        let dropped = self.ring.len();
        self.ring.clear();
        // Fast-forward the counter so drain checks on a dead channel
        // succeed, mirroring the driver's exit protocol cleanup.
        self.completed_reference = self.last_submitted_reference;
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::SubmitSpec;
    use neon_sim::SimDuration;

    fn mk_channel() -> Channel {
        Channel::new(
            ChannelId::new(0),
            ContextId::new(0),
            TaskId::new(0),
            RequestKind::Compute,
            4,
        )
    }

    fn mk_request(reference: u64) -> Request {
        let spec = SubmitSpec::compute(SimDuration::from_micros(10));
        Request {
            id: crate::ids::RequestId::new(reference),
            task: TaskId::new(0),
            context: ContextId::new(0),
            channel: ChannelId::new(0),
            kind: spec.kind,
            service: spec.service,
            blocking: spec.blocking,
            submitted_at: SimTime::ZERO,
            reference,
        }
    }

    #[test]
    fn references_are_sequential_from_one() {
        let mut ch = mk_channel();
        let r1 = ch.enqueue(SimTime::ZERO, mk_request);
        let r2 = ch.enqueue(SimTime::ZERO, mk_request);
        assert_eq!((r1, r2), (1, 2));
        assert_eq!(ch.last_submitted_reference(), 2);
        assert_eq!(ch.completed_reference(), 0);
    }

    #[test]
    fn drain_tracks_reference_counter() {
        let mut ch = mk_channel();
        assert!(ch.drained(), "empty channel is drained");
        ch.enqueue(SimTime::ZERO, mk_request);
        assert!(!ch.drained());
        ch.pop_front().unwrap();
        ch.record_completion(1);
        assert!(ch.drained());
        assert_eq!(ch.completions(), 1);
    }

    #[test]
    fn fifo_order_preserved() {
        let mut ch = mk_channel();
        for _ in 0..3 {
            ch.enqueue(SimTime::ZERO, mk_request);
        }
        let refs: Vec<u64> = std::iter::from_fn(|| ch.pop_front().map(|r| r.reference)).collect();
        assert_eq!(refs, vec![1, 2, 3]);
    }

    #[test]
    fn ring_capacity_is_enforced() {
        let mut ch = mk_channel();
        for _ in 0..4 {
            ch.enqueue(SimTime::ZERO, mk_request);
        }
        assert!(ch.is_full());
    }

    #[test]
    #[should_panic(expected = "ring overflow")]
    fn overflow_panics() {
        let mut ch = mk_channel();
        for _ in 0..5 {
            ch.enqueue(SimTime::ZERO, mk_request);
        }
    }

    #[test]
    fn destroy_clears_and_settles_counters() {
        let mut ch = mk_channel();
        ch.enqueue(SimTime::ZERO, mk_request);
        ch.enqueue(SimTime::ZERO, mk_request);
        let dropped = ch.destroy();
        assert_eq!(dropped, 2);
        assert!(!ch.is_active());
        assert!(ch.drained(), "destroyed channel must read as drained");
    }

    #[test]
    fn last_submission_time_recorded() {
        let mut ch = mk_channel();
        assert_eq!(ch.last_submission_at(), None);
        let t = SimTime::from_micros(5);
        ch.enqueue(t, mk_request);
        assert_eq!(ch.last_submission_at(), Some(t));
    }

    #[test]
    #[should_panic(expected = "destroyed channel")]
    fn submit_after_destroy_panics() {
        let mut ch = mk_channel();
        ch.destroy();
        ch.enqueue(SimTime::ZERO, mk_request);
    }
}
