//! Identifiers for the resource principals and device objects.
//!
//! Newtypes keep the id spaces statically distinct (C-NEWTYPE): a
//! [`TaskId`] can never be confused with a [`ChannelId`] even though both
//! are small integers.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(u32);

        impl $name {
            /// Wraps a raw index.
            pub const fn new(raw: u32) -> Self {
                $name(raw)
            }

            /// The raw index.
            pub const fn raw(self) -> u32 {
                self.0
            }

            /// The raw index as `usize`, for direct table indexing.
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// Wraps a table index, checking that it fits the 32-bit id
            /// space instead of silently truncating.
            pub fn from_index(index: usize) -> Self {
                // lint: allow(unchecked-unwrap) — id tables are bounded far
                // below 2^32; overflowing the id space is unrecoverable.
                $name(u32::try_from(index).expect("id index exceeds u32"))
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(raw: u32) -> Self {
                $name(raw)
            }
        }
    };
}

id_type! {
    /// The resource principal the schedulers provide fairness to — a
    /// process or virtual machine in the paper's terminology.
    TaskId, "T"
}

id_type! {
    /// A GPU context (address space); encapsulates channels whose
    /// requests may be causally related.
    ContextId, "ctx"
}

id_type! {
    /// A physical accelerator in a multi-device host. Context and
    /// channel id spaces are *per device*: a [`ChannelId`] is only
    /// meaningful together with the device that allocated it.
    DeviceId, "dev"
}

id_type! {
    /// A GPU request queue plus its software infrastructure (command
    /// buffer, ring buffer, channel register).
    ChannelId, "ch"
}

/// A globally unique request identifier (monotonic per device).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct RequestId(u64);

impl RequestId {
    /// Wraps a raw sequence number.
    pub const fn new(raw: u64) -> Self {
        RequestId(raw)
    }

    /// The raw sequence number.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip() {
        assert_eq!(TaskId::new(3).raw(), 3);
        assert_eq!(TaskId::new(3).index(), 3);
        assert_eq!(ChannelId::from(9).raw(), 9);
        assert_eq!(RequestId::new(17).raw(), 17);
    }

    #[test]
    fn display_is_prefixed() {
        assert_eq!(TaskId::new(1).to_string(), "T1");
        assert_eq!(ContextId::new(2).to_string(), "ctx2");
        assert_eq!(ChannelId::new(3).to_string(), "ch3");
        assert_eq!(RequestId::new(4).to_string(), "req4");
        assert_eq!(DeviceId::new(5).to_string(), "dev5");
    }

    #[test]
    fn ids_order_by_raw_value() {
        assert!(TaskId::new(1) < TaskId::new(2));
        assert!(RequestId::new(10) > RequestId::new(9));
    }
}
