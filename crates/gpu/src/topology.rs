//! Multi-device host topology: heterogeneous devices and the
//! interconnect between them.
//!
//! Real multi-accelerator hosts are not flat: two GPUs may hang off the
//! same PCIe switch, sit on different switches of one NUMA domain, or
//! live across a QPI/UPI hop. Moving a task's working set between
//! devices (or staging it from host memory at admission) costs time
//! that depends on which of those [`LinkTier`]s the path crosses. A
//! [`Topology`] captures both axes the placement layer needs:
//!
//! - **Heterogeneity** — one [`GpuConfig`] per device (channel/context
//!   capacity, context-switch cost, …).
//! - **Distance** — a per-device `(numa, switch)` coordinate from which
//!   the pairwise link tier, and the tier of the host→device path, are
//!   derived. The host's memory is rooted at NUMA node 0 / switch 0 by
//!   convention, so a device at `(0, 0)` is "near" and a device at
//!   `(1, _)` is a NUMA hop away.
//!
//! Transfer costs follow a simple latency + size/bandwidth model per
//! tier ([`InterconnectParams`]). The default parameters are free
//! ([`InterconnectParams::free`]) so that topologies constructed only
//! to describe device counts reproduce the flat, cost-less behavior of
//! the previous multi-device model bit for bit; cost-aware experiments
//! opt in via [`InterconnectParams::pcie_gen3`] or explicit values.

use crate::GpuConfig;
use neon_sim::SimDuration;

/// The interconnect tier a device-to-device (or host-to-device) path
/// crosses. Ordered by distance: `Local < SameSwitch < CrossPcie <
/// CrossNuma`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LinkTier {
    /// Same device — no data movement.
    Local,
    /// Both endpoints under one PCIe switch.
    SameSwitch,
    /// Same NUMA domain, different PCIe switches (root-complex hop).
    CrossPcie,
    /// Different NUMA domains (QPI/UPI hop on top of PCIe).
    CrossNuma,
}

impl LinkTier {
    /// All tiers, nearest first.
    pub const ALL: [LinkTier; 4] = [
        LinkTier::Local,
        LinkTier::SameSwitch,
        LinkTier::CrossPcie,
        LinkTier::CrossNuma,
    ];

    /// Distance rank (0 = local), monotone in tier.
    pub fn rank(self) -> u32 {
        match self {
            LinkTier::Local => 0,
            LinkTier::SameSwitch => 1,
            LinkTier::CrossPcie => 2,
            LinkTier::CrossNuma => 3,
        }
    }

    /// Label used in traces and scenario files.
    pub fn label(self) -> &'static str {
        match self {
            LinkTier::Local => "local",
            LinkTier::SameSwitch => "same-switch",
            LinkTier::CrossPcie => "cross-pcie",
            LinkTier::CrossNuma => "cross-numa",
        }
    }
}

impl std::fmt::Display for LinkTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Latency and bandwidth of each interconnect tier; the cost of moving
/// `bytes` across a tier is `latency + bytes / bandwidth`.
#[derive(Debug, Clone, PartialEq)]
pub struct InterconnectParams {
    /// Fixed per-transfer setup latency of a same-switch path.
    pub same_switch_latency: SimDuration,
    /// Fixed per-transfer setup latency of a cross-PCIe path.
    pub cross_pcie_latency: SimDuration,
    /// Fixed per-transfer setup latency of a cross-NUMA path.
    pub cross_numa_latency: SimDuration,
    /// Same-switch bandwidth in bytes per microsecond (= MB/ms ≈ GB/s).
    pub same_switch_bpus: f64,
    /// Cross-PCIe bandwidth in bytes per microsecond.
    pub cross_pcie_bpus: f64,
    /// Cross-NUMA bandwidth in bytes per microsecond.
    pub cross_numa_bpus: f64,
}

impl InterconnectParams {
    /// Free data movement: every transfer costs zero, reproducing the
    /// pre-topology model exactly. The default.
    pub fn free() -> Self {
        InterconnectParams {
            same_switch_latency: SimDuration::ZERO,
            cross_pcie_latency: SimDuration::ZERO,
            cross_numa_latency: SimDuration::ZERO,
            same_switch_bpus: f64::INFINITY,
            cross_pcie_bpus: f64::INFINITY,
            cross_numa_bpus: f64::INFINITY,
        }
    }

    /// Plausible PCIe 3.0-era constants: ~12 GB/s under one switch,
    /// ~8 GB/s through the root complex, ~6 GB/s across a NUMA hop,
    /// with setup latencies growing by tier. (One GB/s = 1074 bytes/µs;
    /// rounded values are used — the model cares about ordering and
    /// magnitude, not vendor datasheets.)
    pub fn pcie_gen3() -> Self {
        InterconnectParams {
            same_switch_latency: SimDuration::from_micros(10),
            cross_pcie_latency: SimDuration::from_micros(25),
            cross_numa_latency: SimDuration::from_micros(60),
            same_switch_bpus: 12_000.0,
            cross_pcie_bpus: 8_000.0,
            cross_numa_bpus: 6_000.0,
        }
    }

    /// The cost of moving `bytes` across `tier`.
    pub fn transfer_cost(&self, tier: LinkTier, bytes: u64) -> SimDuration {
        let (latency, bpus) = match tier {
            LinkTier::Local => return SimDuration::ZERO,
            LinkTier::SameSwitch => (self.same_switch_latency, self.same_switch_bpus),
            LinkTier::CrossPcie => (self.cross_pcie_latency, self.cross_pcie_bpus),
            LinkTier::CrossNuma => (self.cross_numa_latency, self.cross_numa_bpus),
        };
        if bytes == 0 || bpus.is_infinite() {
            return latency;
        }
        latency + SimDuration::from_micros_f64(bytes as f64 / bpus)
    }
}

impl Default for InterconnectParams {
    fn default() -> Self {
        InterconnectParams::free()
    }
}

/// The cluster tier above [`InterconnectParams`]: the network between
/// *hosts*. A fleet of multi-device hosts prices cross-host working-set
/// movement (migration between worlds) with one latency + size/bandwidth
/// pair — there is no intra-cluster distance structure to model at this
/// granularity; every host pair is one network hop apart.
///
/// The default is free, so fleets constructed only to describe host
/// counts charge nothing and behave exactly like independent hosts.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterInterconnect {
    /// Fixed per-transfer setup latency of a host-to-host path.
    pub latency: SimDuration,
    /// Host-to-host bandwidth in bytes per microsecond (= MB/ms ≈ GB/s).
    pub bpus: f64,
}

impl ClusterInterconnect {
    /// Free cross-host data movement: every transfer costs zero. The
    /// default.
    pub fn free() -> Self {
        ClusterInterconnect {
            latency: SimDuration::ZERO,
            bpus: f64::INFINITY,
        }
    }

    /// Plausible datacenter-network constants: ~3 GB/s effective
    /// (25 GbE-era RDMA-ish) with a 100 µs setup latency — an order of
    /// magnitude slower than any intra-host tier, as it should be.
    pub fn network_25g() -> Self {
        ClusterInterconnect {
            latency: SimDuration::from_micros(100),
            bpus: 3_000.0,
        }
    }

    /// `true` when transfers cost nothing (the default).
    pub fn is_free(&self) -> bool {
        self.latency.is_zero() && self.bpus.is_infinite()
    }

    /// The cost of moving `bytes` between two hosts.
    pub fn transfer_cost(&self, bytes: u64) -> SimDuration {
        if bytes == 0 || self.bpus.is_infinite() {
            return self.latency;
        }
        self.latency + SimDuration::from_micros_f64(bytes as f64 / self.bpus)
    }
}

impl Default for ClusterInterconnect {
    fn default() -> Self {
        ClusterInterconnect::free()
    }
}

/// One device's place in the host: its configuration and its
/// `(numa, switch)` coordinate. Switch ids are global (two devices
/// share a switch iff their `switch_id`s are equal, which implies the
/// same NUMA node in any physically sensible description).
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSlotSpec {
    /// Device configuration (capacity, context-switch cost, …).
    pub config: GpuConfig,
    /// NUMA node the device's PCIe root complex hangs off.
    pub numa: u32,
    /// PCIe switch the device sits under.
    pub switch_id: u32,
}

impl DeviceSlotSpec {
    /// A device at the near corner of the host: NUMA 0, switch 0.
    pub fn near(config: GpuConfig) -> Self {
        DeviceSlotSpec {
            config,
            numa: 0,
            switch_id: 0,
        }
    }
}

/// The multi-device host description: per-device configurations,
/// coordinates, and interconnect timing.
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    devices: Vec<DeviceSlotSpec>,
    interconnect: InterconnectParams,
}

impl Topology {
    /// A symmetric topology: `n` identical devices on one switch with
    /// free interconnect — behaviorally identical to the flat
    /// pre-topology multi-device model.
    pub fn symmetric(n: usize, config: GpuConfig) -> Self {
        assert!(n >= 1, "a topology needs at least one device");
        Topology {
            devices: (0..n)
                .map(|_| DeviceSlotSpec::near(config.clone()))
                .collect(),
            interconnect: InterconnectParams::free(),
        }
    }

    /// A topology from explicit per-device slots.
    ///
    /// # Panics
    ///
    /// Panics when `devices` is empty or a switch id spans two NUMA
    /// nodes (physically impossible).
    pub fn new(devices: Vec<DeviceSlotSpec>, interconnect: InterconnectParams) -> Self {
        assert!(!devices.is_empty(), "a topology needs at least one device");
        for a in &devices {
            for b in &devices {
                assert!(
                    a.switch_id != b.switch_id || a.numa == b.numa,
                    "switch {} spans NUMA nodes {} and {}",
                    a.switch_id,
                    a.numa,
                    b.numa
                );
            }
        }
        Topology {
            devices,
            interconnect,
        }
    }

    /// Replaces the interconnect parameters.
    pub fn with_interconnect(mut self, interconnect: InterconnectParams) -> Self {
        self.interconnect = interconnect;
        self
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// `true` if the topology has no devices (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// The per-device slots, in device-id order.
    pub fn devices(&self) -> &[DeviceSlotSpec] {
        &self.devices
    }

    /// The per-device [`GpuConfig`]s, in device-id order.
    pub fn configs(&self) -> Vec<GpuConfig> {
        self.devices.iter().map(|d| d.config.clone()).collect()
    }

    /// The interconnect timing parameters.
    pub fn interconnect(&self) -> &InterconnectParams {
        &self.interconnect
    }

    /// The link tier between devices `a` and `b`.
    pub fn tier(&self, a: usize, b: usize) -> LinkTier {
        if a == b {
            return LinkTier::Local;
        }
        let (da, db) = (&self.devices[a], &self.devices[b]);
        if da.numa != db.numa {
            LinkTier::CrossNuma
        } else if da.switch_id != db.switch_id {
            LinkTier::CrossPcie
        } else {
            LinkTier::SameSwitch
        }
    }

    /// The tier of the host→device path. Host memory is rooted at NUMA
    /// node 0 / switch 0, so a device there is [`LinkTier::SameSwitch`]
    /// away (one hop through its switch), a device on another switch of
    /// NUMA 0 is [`LinkTier::CrossPcie`], and a device on any other
    /// NUMA node is [`LinkTier::CrossNuma`].
    pub fn host_tier(&self, dev: usize) -> LinkTier {
        let d = &self.devices[dev];
        if d.numa != 0 {
            LinkTier::CrossNuma
        } else if d.switch_id != 0 {
            LinkTier::CrossPcie
        } else {
            LinkTier::SameSwitch
        }
    }

    /// The cost of migrating `bytes` of task state from device `from`
    /// to device `to`.
    pub fn migration_cost(&self, from: usize, to: usize, bytes: u64) -> SimDuration {
        self.interconnect.transfer_cost(self.tier(from, to), bytes)
    }

    /// The cost of staging `bytes` from host memory onto device `dev`
    /// at admission.
    pub fn staging_cost(&self, dev: usize, bytes: u64) -> SimDuration {
        self.interconnect.transfer_cost(self.host_tier(dev), bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The canonical 4-GPU testbed used across tests: two devices per
    /// NUMA node, one switch each pair, the far pair with half the
    /// channel capacity.
    fn hetero4() -> Topology {
        let near = GpuConfig::default();
        let far = GpuConfig {
            total_channels: 48,
            total_contexts: 24,
            ..GpuConfig::default()
        };
        Topology::new(
            vec![
                DeviceSlotSpec {
                    config: near.clone(),
                    numa: 0,
                    switch_id: 0,
                },
                DeviceSlotSpec {
                    config: near,
                    numa: 0,
                    switch_id: 1,
                },
                DeviceSlotSpec {
                    config: far.clone(),
                    numa: 1,
                    switch_id: 2,
                },
                DeviceSlotSpec {
                    config: far,
                    numa: 1,
                    switch_id: 2,
                },
            ],
            InterconnectParams::pcie_gen3(),
        )
    }

    #[test]
    fn tiers_follow_numa_and_switch_coordinates() {
        let t = hetero4();
        assert_eq!(t.tier(0, 0), LinkTier::Local);
        assert_eq!(t.tier(0, 1), LinkTier::CrossPcie);
        assert_eq!(t.tier(2, 3), LinkTier::SameSwitch);
        assert_eq!(t.tier(0, 2), LinkTier::CrossNuma);
        assert_eq!(t.tier(2, 0), LinkTier::CrossNuma, "tiers are symmetric");
        assert_eq!(t.host_tier(0), LinkTier::SameSwitch);
        assert_eq!(t.host_tier(1), LinkTier::CrossPcie);
        assert_eq!(t.host_tier(3), LinkTier::CrossNuma);
    }

    #[test]
    fn transfer_cost_is_monotone_in_tier_and_size() {
        let p = InterconnectParams::pcie_gen3();
        let mb = 1 << 20;
        let costs: Vec<SimDuration> = LinkTier::ALL
            .iter()
            .map(|&tier| p.transfer_cost(tier, 64 * mb))
            .collect();
        for w in costs.windows(2) {
            assert!(w[0] < w[1], "cost must grow with distance: {costs:?}");
        }
        assert!(
            p.transfer_cost(LinkTier::CrossNuma, 64 * mb)
                > p.transfer_cost(LinkTier::CrossNuma, mb),
            "cost must grow with size"
        );
        assert_eq!(
            p.transfer_cost(LinkTier::Local, u64::MAX),
            SimDuration::ZERO
        );
    }

    #[test]
    fn free_interconnect_costs_nothing_anywhere() {
        let t = Topology::symmetric(4, GpuConfig::default());
        for a in 0..4 {
            for b in 0..4 {
                assert_eq!(t.migration_cost(a, b, 1 << 30), SimDuration::ZERO);
            }
            assert_eq!(t.staging_cost(a, 1 << 30), SimDuration::ZERO);
        }
    }

    #[test]
    fn heterogeneous_configs_surface_per_device() {
        let t = hetero4();
        let configs = t.configs();
        assert_eq!(configs[0].total_contexts, 48);
        assert_eq!(configs[2].total_contexts, 24);
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn cluster_interconnect_prices_cross_host_moves() {
        let free = ClusterInterconnect::free();
        assert!(free.is_free());
        assert_eq!(free.transfer_cost(1 << 30), SimDuration::ZERO);
        let net = ClusterInterconnect::network_25g();
        assert!(!net.is_free());
        assert_eq!(net.transfer_cost(0), SimDuration::from_micros(100));
        assert!(
            net.transfer_cost(64 << 20) > net.transfer_cost(1 << 20),
            "cost must grow with size"
        );
        // The cluster hop must dominate every intra-host tier for the
        // same payload — otherwise fleet migration pricing is nonsense.
        let pcie = InterconnectParams::pcie_gen3();
        assert!(net.transfer_cost(64 << 20) > pcie.transfer_cost(LinkTier::CrossNuma, 64 << 20));
    }

    #[test]
    #[should_panic(expected = "spans NUMA nodes")]
    fn a_switch_cannot_span_numa_nodes() {
        Topology::new(
            vec![
                DeviceSlotSpec {
                    config: GpuConfig::default(),
                    numa: 0,
                    switch_id: 7,
                },
                DeviceSlotSpec {
                    config: GpuConfig::default(),
                    numa: 1,
                    switch_id: 7,
                },
            ],
            InterconnectParams::free(),
        );
    }
}
