//! Execution engines.
//!
//! The modeled device has two independent engines: a compute/graphics
//! engine (weighted round-robin over channels) and a DMA engine (FIFO).
//! Their independence is what lets DMA transfers overlap computation and
//! push concurrency efficiency above 1.0 (Fig. 7's ">1.0" cases).

use neon_sim::{SimDuration, SimTime};

use crate::ids::ContextId;
use crate::request::Request;

/// Which engine executes a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineClass {
    /// Executes compute and graphics requests.
    Compute,
    /// Executes DMA transfers, concurrently with the compute engine.
    Dma,
}

impl EngineClass {
    /// Both engine classes, for exhaustive iteration.
    pub const ALL: [EngineClass; 2] = [EngineClass::Compute, EngineClass::Dma];
}

/// A request currently executing on an engine.
#[derive(Debug, Clone, Copy)]
pub struct RunningRequest {
    /// The request being executed.
    pub request: Request,
    /// When the engine was handed the request (context-switch penalty,
    /// if any, begins here).
    pub dispatched_at: SimTime,
    /// When execution proper began (after any context-switch penalty).
    pub started_at: SimTime,
    /// When the engine will finish ([`SimTime::MAX`] for unbounded
    /// requests).
    pub finish_at: SimTime,
}

/// One execution engine: at most one request in flight.
#[derive(Debug, Clone, Default)]
pub(crate) struct Engine {
    running: Option<RunningRequest>,
    /// Context of the most recently executed request; a context switch
    /// penalty applies when the next request differs.
    last_context: Option<ContextId>,
    /// Cumulative busy time (service + context switches) for utilization
    /// accounting.
    busy: SimDuration,
}

impl Engine {
    pub(crate) fn is_idle(&self) -> bool {
        self.running.is_none()
    }

    pub(crate) fn running(&self) -> Option<&RunningRequest> {
        self.running.as_ref()
    }

    #[cfg(test)]
    pub(crate) fn last_context(&self) -> Option<ContextId> {
        self.last_context
    }

    pub(crate) fn busy(&self) -> SimDuration {
        self.busy
    }

    /// Begins executing `request` at `now`, charging `switch_cost` if the
    /// context differs from the previous request's. Returns the finish
    /// time.
    pub(crate) fn start(
        &mut self,
        now: SimTime,
        request: Request,
        switch_cost: SimDuration,
    ) -> SimTime {
        debug_assert!(self.is_idle(), "engine already busy");
        let switching = self.last_context != Some(request.context);
        let penalty = if switching {
            switch_cost
        } else {
            SimDuration::ZERO
        };
        let started_at = now + penalty;
        let finish_at = if request.is_unbounded() {
            SimTime::MAX
        } else {
            started_at + request.service
        };
        self.last_context = Some(request.context);
        self.running = Some(RunningRequest {
            request,
            dispatched_at: now,
            started_at,
            finish_at,
        });
        finish_at
    }

    /// Completes the in-flight request at `now`, accumulating busy time.
    ///
    /// # Panics
    ///
    /// Panics if the engine is idle.
    pub(crate) fn finish(&mut self, now: SimTime) -> RunningRequest {
        // lint: allow(unchecked-unwrap) — a finish event is only scheduled
        // while a run is in flight
        let run = self.running.take().expect("finish on idle engine");
        debug_assert_eq!(now, run.finish_at, "completion fired at wrong time");
        // Busy time covers the context-switch penalty plus the service.
        self.busy += now.saturating_duration_since(run.dispatched_at);
        run
    }

    /// Aborts the in-flight request at `now` (task kill). The elapsed
    /// portion still counts as busy time. Returns the aborted request.
    pub(crate) fn abort(&mut self, now: SimTime) -> Option<RunningRequest> {
        let run = self.running.take()?;
        self.busy += now.saturating_duration_since(run.dispatched_at);
        // The kill leaves the device needing a fresh context load.
        self.last_context = None;
        Some(run)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ChannelId, RequestId, TaskId};
    use crate::request::{RequestKind, SubmitSpec};

    fn mk_request(ctx: u32, service_us: u64) -> Request {
        let spec = if service_us == u64::MAX {
            SubmitSpec::infinite_loop()
        } else {
            SubmitSpec::compute(SimDuration::from_micros(service_us))
        };
        Request {
            id: RequestId::new(0),
            task: TaskId::new(0),
            context: ContextId::new(ctx),
            channel: ChannelId::new(0),
            kind: RequestKind::Compute,
            service: spec.service,
            blocking: spec.blocking,
            submitted_at: SimTime::ZERO,
            reference: 1,
        }
    }

    const SWITCH: SimDuration = SimDuration::from_micros(4);

    #[test]
    fn first_request_pays_context_switch() {
        let mut eng = Engine::default();
        let finish = eng.start(SimTime::ZERO, mk_request(0, 10), SWITCH);
        assert_eq!(finish, SimTime::from_micros(14));
    }

    #[test]
    fn same_context_back_to_back_skips_switch() {
        let mut eng = Engine::default();
        let f1 = eng.start(SimTime::ZERO, mk_request(0, 10), SWITCH);
        eng.finish(f1);
        let f2 = eng.start(f1, mk_request(0, 10), SWITCH);
        assert_eq!(f2, f1 + SimDuration::from_micros(10));
    }

    #[test]
    fn context_change_pays_switch() {
        let mut eng = Engine::default();
        let f1 = eng.start(SimTime::ZERO, mk_request(0, 10), SWITCH);
        eng.finish(f1);
        let f2 = eng.start(f1, mk_request(1, 10), SWITCH);
        assert_eq!(f2, f1 + SimDuration::from_micros(14));
    }

    #[test]
    fn unbounded_request_never_finishes() {
        let mut eng = Engine::default();
        let finish = eng.start(SimTime::ZERO, mk_request(0, u64::MAX), SWITCH);
        assert_eq!(finish, SimTime::MAX);
        assert!(!eng.is_idle());
    }

    #[test]
    fn abort_frees_engine_and_clears_context() {
        let mut eng = Engine::default();
        eng.start(SimTime::ZERO, mk_request(0, u64::MAX), SWITCH);
        let aborted = eng.abort(SimTime::from_micros(100)).unwrap();
        assert!(aborted.request.is_unbounded());
        assert!(eng.is_idle());
        assert_eq!(eng.last_context(), None);
        // All 100µs (switch + partial execution) count as busy time.
        assert_eq!(eng.busy(), SimDuration::from_micros(100));
    }

    #[test]
    fn abort_on_idle_engine_is_none() {
        let mut eng = Engine::default();
        assert!(eng.abort(SimTime::ZERO).is_none());
    }

    #[test]
    #[should_panic(expected = "finish on idle engine")]
    fn finish_on_idle_panics() {
        let mut eng = Engine::default();
        eng.finish(SimTime::ZERO);
    }
}
